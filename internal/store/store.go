// Package store implements a map server's spatial database: an R-tree over
// node positions and way segments for geometric queries (reverse geocode,
// snapping, viewport retrieval) and an inverted index over tag text for
// keyword retrieval. It is the per-server "federated spatial database"
// building block of Figure 2.
package store

import (
	crand "crypto/rand"
	"encoding/binary"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"unicode"

	"openflame/internal/geo"
	"openflame/internal/osm"
	"openflame/internal/rtree"
)

// SegmentRef identifies one segment of a way.
type SegmentRef struct {
	WayID osm.WayID
	Index int // segment i connects way node i and i+1
}

// Store indexes one osm.Map. Mutations go through the Store (not the
// underlying map) so indexes stay consistent. Safe for concurrent use.
type Store struct {
	mu sync.RWMutex
	m  *osm.Map
	// The spatial indexes are static bulk-loaded trees with a small dynamic
	// overlay for mutations (see spatialIndex); on a server booted from an
	// indexed snapshot the static columns alias the mmap.
	nodes *spatialIndex[osm.NodeID] // node positions (point rects)
	segs  *spatialIndex[SegmentRef] // way segment bounds
	// inv maps token → sorted posting list. Published lists are
	// copy-on-write: a mid-list insert or any delete builds a fresh slice
	// (tail appends only ever touch capacity beyond a reader's length), so
	// ForEachPostingMatch can merge over them without copying.
	inv map[string][]osm.NodeID
	// bounds caches the map's geodetic bounds, maintained incrementally.
	bounds geo.Rect
	// changes is the sequence-numbered inventory-update log (tag
	// replacements), bounded at changeLogCap entries; changeSeq is the head
	// position. Replicas pull this log from each other for anti-entropy.
	changes   []Change
	changeSeq uint64
	// logID identifies this log's incarnation (drawn at construction):
	// a restarted store mints a new one, so consumers can tell "the log
	// restarted" apart from "the log advanced" even when the new head has
	// overtaken their cursor.
	logID uint64
	// nodeVer tracks each node's update version (see Change.Ver); absent
	// means 0 (never tag-updated).
	nodeVer map[osm.NodeID]uint64
	// notify is a 1-buffered wakeup for change-log consumers: every log
	// append sends non-blockingly, so a sleeping drain loop wakes without
	// any writer ever waiting on a reader. A coalesced signal is enough —
	// consumers re-read the head and drain everything pending.
	notify chan struct{}
}

// Change is one sequence-numbered inventory update: the node's tags were
// replaced wholesale with Tags. The log records tag replacements (the
// paper's independent map-management writes); structural mutations rebuild
// replicas out of band.
type Change struct {
	Seq    uint64
	NodeID osm.NodeID
	Tags   osm.Tags
	// Ver is the node's update version: every local write increments it,
	// and a replicated application adopts the origin's version. It is what
	// lets a replica tell a sibling's ECHO of an old value apart from a
	// genuinely newer write — without it, an echo arriving after a local
	// update would roll the node back and the newer write would be lost
	// federation-wide.
	Ver uint64
	// Pos is the node's position, recorded so log consumers can route the
	// change geometrically (the watch subsystem matches changes against
	// standing regional queries) without a node lookup. Tag updates never
	// move nodes, so the position is exact for the change's lifetime.
	Pos geo.LatLng
}

// changeLogCap is the guaranteed retention of the change log (compaction
// is amortized, so up to 2x may be held). A replica further behind than
// the retained window cannot replay the compacted prefix; because
// applications of the log are idempotent tag replacements, it still
// converges on every retained (and future) change.
const changeLogCap = 4096

// portalToken is the reserved inverted-index token whose posting list
// holds every node carrying osm.TagPortalID, ascending by ID. Tokenize
// only ever emits lowercase alphanumerics, so the NUL prefix cannot
// collide with a real token, and the list rides posting-list persistence
// for free — an attached server knows its portals without walking the map.
const portalToken = "\x00portal"

// New builds the indexes for m from scratch — the cold-start path (no
// snapshot index, or a stale one). The three index families are
// independent, so they build in parallel: node tree, segment tree, and
// inverted text index each get a goroutine walking the (read-only,
// RLock-shared) map. The map must not be mutated externally afterwards.
func New(m *osm.Map) *Store {
	s := &Store{
		m:       m,
		inv:     make(map[string][]osm.NodeID),
		bounds:  geo.EmptyRect(),
		nodeVer: make(map[osm.NodeID]uint64),
		logID:   newLogID(),
		notify:  make(chan struct{}, 1),
	}
	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		ents := make([]rtree.Entry[osm.NodeID], 0, m.NodeCount())
		bounds := geo.EmptyRect()
		m.Nodes(func(n *osm.Node) bool {
			pos := m.NodePosition(n)
			bounds = bounds.ExpandToInclude(pos)
			ents = append(ents, rtree.Entry[osm.NodeID]{Bound: pointRect(pos), Item: n.ID})
			return true
		})
		s.nodes = newSpatial(rtree.BulkLoad(ents))
		s.bounds = bounds
	}()
	go func() {
		defer wg.Done()
		var ents []rtree.Entry[SegmentRef]
		m.Ways(func(w *osm.Way) bool {
			nodes := m.WayNodes(w)
			for i := 1; i < len(nodes); i++ {
				a := m.NodePosition(nodes[i-1])
				b := m.NodePosition(nodes[i])
				r := geo.EmptyRect().ExpandToInclude(a).ExpandToInclude(b)
				ents = append(ents, rtree.Entry[SegmentRef]{
					Bound: r, Item: SegmentRef{WayID: w.ID, Index: i - 1},
				})
			}
			return true
		})
		s.segs = newSpatial(rtree.BulkLoad(ents))
	}()
	go func() {
		defer wg.Done()
		// Nodes iterates in ascending ID order, so every insertPosting here
		// is a tail append.
		m.Nodes(func(n *osm.Node) bool {
			for _, tok := range TokenizeTags(n.Tags) {
				s.inv[tok] = insertPosting(s.inv[tok], n.ID)
			}
			if n.Tags[osm.TagPortalID] != "" {
				s.inv[portalToken] = insertPosting(s.inv[portalToken], n.ID)
			}
			return true
		})
	}()
	wg.Wait()
	return s
}

// NewWithIndex attaches a persisted snapshot index (osm.IndexData, already
// fingerprint-verified against the map's columns by the snapshot reader)
// instead of rebuilding: the static trees are validated structurally and
// adopted as-is, and posting lists slice the persisted CSR arena in place.
// On the mmap path nothing here copies the tree columns — boot cost is
// O(validation), not O(n log n) build.
//
// An error means the index is unusable (corrupt layout, count mismatch);
// callers fall back to New.
func NewWithIndex(m *osm.Map, idx *osm.IndexData) (*Store, error) {
	if idx == nil {
		return nil, fmt.Errorf("store: nil index")
	}
	nodeTree, err := rtree.StaticFromLayout(idx.NodeTree, idx.NodeItems)
	if err != nil {
		return nil, fmt.Errorf("store: node tree: %w", err)
	}
	if nodeTree.Len() != m.NodeCount() {
		return nil, fmt.Errorf("store: index holds %d nodes, map %d", nodeTree.Len(), m.NodeCount())
	}
	if len(idx.SegWays) != len(idx.SegIdxs) {
		return nil, fmt.Errorf("store: segment payload columns disagree")
	}
	refs := make([]SegmentRef, len(idx.SegWays))
	for i := range refs {
		refs[i] = SegmentRef{WayID: osm.WayID(idx.SegWays[i]), Index: int(idx.SegIdxs[i])}
	}
	segTree, err := rtree.StaticFromLayout(idx.SegTree, refs)
	if err != nil {
		return nil, fmt.Errorf("store: segment tree: %w", err)
	}
	if len(idx.PostOff) != len(idx.Tokens)+1 {
		return nil, fmt.Errorf("store: posting offsets disagree with tokens")
	}
	inv := make(map[string][]osm.NodeID, len(idx.Tokens))
	for i, tok := range idx.Tokens {
		if lo, hi := idx.PostOff[i], idx.PostOff[i+1]; hi > lo {
			// Three-index slices: a later copy-on-write append reallocates
			// instead of scribbling past a reader's view (or into the mmap).
			inv[tok] = idx.Postings[lo:hi:hi]
		}
	}
	return &Store{
		m:       m,
		nodes:   newSpatial(nodeTree),
		segs:    newSpatial(segTree),
		inv:     inv,
		bounds:  idx.Bounds,
		nodeVer: make(map[osm.NodeID]uint64),
		logID:   newLogID(),
		notify:  make(chan struct{}, 1),
	}, nil
}

// PersistedIndex exports the serving indexes for snapshot persistence
// (osm.WriteSnapshotVersionsIndexed). Both spatial overlays are compacted
// first so the export is exactly two static trees; the inverted index
// flattens into sorted tokens over one CSR postings arena. A server that
// later attaches this export serves byte-identical results: BulkLoad is
// deterministic and posting lists are persisted in full.
func (s *Store) PersistedIndex() *osm.IndexData {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nodes.compact()
	s.segs.compact()
	idx := &osm.IndexData{
		Bounds:    s.bounds,
		NodeTree:  s.nodes.static.Layout(),
		NodeItems: append([]osm.NodeID(nil), s.nodes.static.Items()...),
	}
	segItems := s.segs.static.Items()
	idx.SegTree = s.segs.static.Layout()
	idx.SegWays = make([]int64, len(segItems))
	idx.SegIdxs = make([]int32, len(segItems))
	for i, ref := range segItems {
		idx.SegWays[i] = int64(ref.WayID)
		idx.SegIdxs[i] = int32(ref.Index)
	}
	idx.Tokens = make([]string, 0, len(s.inv))
	for tok := range s.inv {
		idx.Tokens = append(idx.Tokens, tok)
	}
	sort.Strings(idx.Tokens)
	idx.PostOff = make([]uint32, 1, len(idx.Tokens)+1)
	for _, tok := range idx.Tokens {
		idx.Postings = append(idx.Postings, s.inv[tok]...)
		idx.PostOff = append(idx.PostOff, uint32(len(idx.Postings)))
	}
	return idx
}

// Map returns the underlying map.
//
// Aliasing contract: the returned *osm.Map is the live map the Store
// indexes, handed out for READ-ONLY use (position lookups, iteration,
// FindNodes). Callers must not invoke its write methods — AddNode, AddWay,
// AddRelation, RemoveNode, RemoveWay — or mutate returned elements in
// place: a direct write would bypass the R-tree and inverted index AND the
// generation tracking the server-side query/tile caches key on, silently
// serving stale or inconsistent results. All mutations go through Store
// methods (AddNode, AddWay, UpdateNodeTags, RemoveNode), which maintain
// the indexes and bump the map generation atomically under the Store lock.
func (s *Store) Map() *osm.Map { return s.m }

// Generation returns the underlying map's mutation counter. Every Store
// mutation bumps it exactly once, so a reader observing an unchanged
// generation across a computation saw one consistent snapshot. It is the
// version the mapserver query cache keys results on.
func (s *Store) Generation() uint64 { return s.m.Generation() }

// Bounds returns the geodetic bounding rectangle of the indexed content.
func (s *Store) Bounds() geo.Rect {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.bounds
}

func pointRect(ll geo.LatLng) geo.Rect {
	return geo.Rect{MinLat: ll.Lat, MinLng: ll.Lng, MaxLat: ll.Lat, MaxLng: ll.Lng}
}

func (s *Store) indexNode(n *osm.Node) {
	pos := s.m.NodePosition(n)
	s.nodes.insert(pointRect(pos), n.ID)
	s.bounds = s.bounds.ExpandToInclude(pos)
	for _, tok := range TokenizeTags(n.Tags) {
		s.inv[tok] = insertPosting(s.inv[tok], n.ID)
	}
	if n.Tags[osm.TagPortalID] != "" {
		s.inv[portalToken] = insertPosting(s.inv[portalToken], n.ID)
	}
}

// insertPosting adds id to a sorted posting list. The index build appends
// ascending IDs, so the common case is a tail append; a mid-list insert is
// copy-on-write to keep published lists immutable.
func insertPosting(lst []osm.NodeID, id osm.NodeID) []osm.NodeID {
	i := sort.Search(len(lst), func(i int) bool { return lst[i] >= id })
	if i == len(lst) {
		return append(lst, id)
	}
	if lst[i] == id {
		return lst
	}
	out := make([]osm.NodeID, len(lst)+1)
	copy(out, lst[:i])
	out[i] = id
	copy(out[i+1:], lst[i:])
	return out
}

// removePosting removes id from a sorted posting list, copy-on-write.
func removePosting(lst []osm.NodeID, id osm.NodeID) []osm.NodeID {
	i := sort.Search(len(lst), func(i int) bool { return lst[i] >= id })
	if i == len(lst) || lst[i] != id {
		return lst
	}
	out := make([]osm.NodeID, 0, len(lst)-1)
	out = append(out, lst[:i]...)
	return append(out, lst[i+1:]...)
}

func (s *Store) unindexNode(n *osm.Node) {
	pos := s.m.NodePosition(n)
	s.nodes.delete(pointRect(pos), n.ID)
	toks := TokenizeTags(n.Tags)
	if n.Tags[osm.TagPortalID] != "" {
		toks = append(toks, portalToken)
	}
	for _, tok := range toks {
		if lst := removePosting(s.inv[tok], n.ID); len(lst) == 0 {
			delete(s.inv, tok)
		} else {
			s.inv[tok] = lst
		}
	}
}

func (s *Store) indexWay(w *osm.Way) {
	nodes := s.m.WayNodes(w)
	for i := 1; i < len(nodes); i++ {
		a := s.m.NodePosition(nodes[i-1])
		b := s.m.NodePosition(nodes[i])
		r := geo.EmptyRect().ExpandToInclude(a).ExpandToInclude(b)
		s.segs.insert(r, SegmentRef{WayID: w.ID, Index: i - 1})
	}
}

// AddNode inserts a node into the map and indexes, returning its ID.
func (s *Store) AddNode(n *osm.Node) osm.NodeID {
	s.mu.Lock()
	defer s.mu.Unlock()
	id := s.m.AddNode(n)
	s.indexNode(n)
	s.nodes.maybeCompact()
	return id
}

// AddWay inserts a way into the map and indexes.
func (s *Store) AddWay(w *osm.Way) (osm.WayID, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	id, err := s.m.AddWay(w)
	if err != nil {
		return 0, err
	}
	s.indexWay(w)
	s.segs.maybeCompact()
	return id, nil
}

// UpdateNodeTags replaces a node's tags, maintaining the inverted index.
// The update is copy-on-write: the stored node is replaced by a fresh one,
// so concurrent readers holding the old *osm.Node see a consistent (stale)
// snapshot rather than a mutating map.
func (s *Store) UpdateNodeTags(id osm.NodeID, tags osm.Tags) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.m.Node(id)
	if n == nil {
		return false
	}
	s.replaceTagsLocked(n, tags, s.nodeVer[id]+1)
	return true
}

// ApplyReplicatedTags applies a tag state replicated from a sibling,
// carrying the origin's node version. Returns whether the map changed:
// a version at or below the local one is a stale echo or a replay and is
// skipped — the guard that stops an old value arriving late from rolling
// back a newer local write. An EQUAL-version conflict (two replicas wrote
// the same node concurrently) settles on the canonically larger tag
// serialization, so every member of the set picks the same winner.
func (s *Store) ApplyReplicatedTags(id osm.NodeID, tags osm.Tags, ver uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.m.Node(id)
	if n == nil {
		return false
	}
	cur := s.nodeVer[id]
	if ver < cur {
		return false
	}
	if ver == cur && canonicalTags(tags) <= canonicalTags(n.Tags) {
		return false
	}
	s.replaceTagsLocked(n, tags, ver)
	return true
}

// NodeVersion returns a node's update version (0 = never tag-updated).
func (s *Store) NodeVersion(id osm.NodeID) uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.nodeVer[id]
}

// NodeVersions returns a copy of every non-zero node update version — the
// state persisted alongside a map snapshot (osm.WriteSnapshotVersions) so a
// restarted replica resumes versioning where it left off.
func (s *Store) NodeVersions() map[osm.NodeID]uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[osm.NodeID]uint64, len(s.nodeVer))
	for id, v := range s.nodeVer {
		out[id] = v
	}
	return out
}

// RestoreNodeVersions seeds node update versions from a persisted snapshot:
// each node adopts the restored version unless it already holds a higher
// one. No change is logged and the generation does not move — restoring
// versions is bookkeeping, not a write. It closes the restart gap: a
// replica that restarts and accepts writes while isolated from every
// sibling would otherwise mint low versions that lose to the stale history
// those siblings still hold.
func (s *Store) RestoreNodeVersions(vers map[osm.NodeID]uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for id, v := range vers {
		if v > s.nodeVer[id] {
			s.nodeVer[id] = v
		}
	}
}

// replaceTagsLocked swaps a node's tags copy-on-write, maintains the
// indexes and version, and appends to the change log. Caller holds s.mu.
func (s *Store) replaceTagsLocked(n *osm.Node, tags osm.Tags, ver uint64) {
	s.unindexNode(n)
	nn := &osm.Node{ID: n.ID, Pos: n.Pos, Local: n.Local, Tags: tags}
	s.m.AddNode(nn) // replaces the entry under the map's own lock
	s.indexNode(nn)
	s.nodes.maybeCompact()
	s.nodeVer[n.ID] = ver
	s.changeSeq++
	s.changes = append(s.changes, Change{
		Seq: s.changeSeq, NodeID: n.ID, Tags: tags.Clone(), Ver: ver,
		Pos: s.m.NodePosition(nn),
	})
	// Compact lazily at 2x the cap so a hot write path past the cap pays
	// an O(cap) copy once per cap writes, not on every write; between
	// compactions the log retains AT LEAST the last changeLogCap changes.
	if len(s.changes) > 2*changeLogCap {
		s.changes = append([]Change(nil), s.changes[len(s.changes)-changeLogCap:]...)
	}
	// Wake any log consumer; the 1-buffered send coalesces and never blocks.
	select {
	case s.notify <- struct{}{}:
	default:
	}
}

// canonicalTags renders a tag set in a canonical order for deterministic
// equal-version conflict resolution.
func canonicalTags(t osm.Tags) string {
	keys := make([]string, 0, len(t))
	for k := range t {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(k)
		b.WriteByte(0)
		b.WriteString(t[k])
		b.WriteByte(0)
	}
	return b.String()
}

// newLogID draws a fresh change-log incarnation id: random (uniqueness
// across process restarts is the whole point), never zero (zero is the
// pre-incarnation wire value).
func newLogID() uint64 {
	var b [8]byte
	if _, err := crand.Read(b[:]); err != nil {
		// Fallback: a process-local counter still distinguishes in-process
		// restarts, the common test scenario.
		return logIDFallback.Add(1)
	}
	id := binary.LittleEndian.Uint64(b[:])
	if id == 0 {
		id = 1
	}
	return id
}

var logIDFallback atomic.Uint64

// LogID returns the change log's incarnation id (stable for the store's
// lifetime, fresh on every construction).
func (s *Store) LogID() uint64 { return s.logID }

// ChangeNotify returns the change-log wakeup channel: a 1-buffered signal
// that receives after every log append (coalesced — one pending signal may
// cover many appends). Consumers treat a receive as "the head may have
// moved" and drain via ChangesSince.
func (s *Store) ChangeNotify() <-chan struct{} { return s.notify }

// ChangeSeq returns the head position of the inventory-update log: the
// sequence number of the most recent logged change (0 = none yet). Two
// replicas reporting the same ChangeSeq after anti-entropy hold the same
// logged content.
func (s *Store) ChangeSeq() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.changeSeq
}

// FirstChangeSeq returns the oldest sequence number still retained in the
// log (0 when the log is empty).
func (s *Store) FirstChangeSeq() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if len(s.changes) == 0 {
		return 0
	}
	return s.changes[0].Seq
}

// ChangesSince returns up to limit logged changes with Seq > since, oldest
// first (limit <= 0 means all retained). The returned slice is a copy; the
// Tags maps are shared and must be treated as immutable.
func (s *Store) ChangesSince(since uint64, limit int) []Change {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if len(s.changes) == 0 {
		return nil
	}
	// The log is contiguous: changes[i].Seq == changes[0].Seq + i. The
	// delta stays in uint64 until range-checked — `since` is wire input
	// (an absurd cursor must yield an empty answer, not an overflowed
	// negative slice index).
	var from int
	if since >= s.changes[0].Seq {
		delta := since - s.changes[0].Seq + 1
		if delta >= uint64(len(s.changes)) {
			return nil
		}
		from = int(delta)
	}
	out := s.changes[from:]
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return append([]Change(nil), out...)
}

// RemoveNode removes an unreferenced node from map and indexes.
func (s *Store) RemoveNode(id osm.NodeID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.m.Node(id)
	if n == nil {
		return false
	}
	if err := s.m.RemoveNode(id); err != nil {
		return false
	}
	s.unindexNode(n)
	s.nodes.maybeCompact()
	return true
}

// NodesInRect returns nodes whose position falls in r.
func (s *Store) NodesInRect(r geo.Rect) []*osm.Node {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []*osm.Node
	s.nodes.search(r, func(_ geo.Rect, id osm.NodeID) bool {
		if n := s.m.Node(id); n != nil {
			out = append(out, n)
		}
		return true
	})
	return out
}

// NodeHit is a proximity query result.
type NodeHit struct {
	Node           *osm.Node
	DistanceMeters float64
}

// NearestNodes returns up to k nodes closest to ll within maxMeters
// (<=0 for unbounded), closest first.
func (s *Store) NearestNodes(ll geo.LatLng, k int, maxMeters float64) []NodeHit {
	s.mu.RLock()
	defer s.mu.RUnlock()
	nbrs := s.nodes.nearest(ll, k, maxMeters)
	out := make([]NodeHit, 0, len(nbrs))
	for _, nb := range nbrs {
		if n := s.m.Node(nb.Item); n != nil {
			out = append(out, NodeHit{Node: n, DistanceMeters: nb.DistanceMeters})
		}
	}
	return out
}

// NearestNodesWhere returns up to k nodes satisfying pred closest to ll.
// It expands the candidate pool geometrically until enough matches are
// found or the pool is exhausted.
func (s *Store) NearestNodesWhere(ll geo.LatLng, k int, maxMeters float64, pred func(*osm.Node) bool) []NodeHit {
	for pool := k * 4; ; pool *= 4 {
		hits := s.NearestNodes(ll, pool, maxMeters)
		var out []NodeHit
		for _, h := range hits {
			if pred(h.Node) {
				out = append(out, h)
				if len(out) == k {
					return out
				}
			}
		}
		if len(hits) < pool {
			return out // pool exhausted
		}
	}
}

// Snap is a snap-to-way result: the closest point on the closest way
// segment, the way, and the nearer way endpoint node of that segment.
type Snap struct {
	Way            *osm.Way
	Position       geo.LatLng
	DistanceMeters float64
	// NodeID is the closer endpoint of the snapped segment, useful as a
	// routing graph entry point.
	NodeID osm.NodeID
}

// SnapToWay projects ll onto the nearest way within maxMeters.
// It returns false if no way is near.
func (s *Store) SnapToWay(ll geo.LatLng, maxMeters float64) (Snap, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	// Candidate segments: those whose bounds fall within the search box.
	search := pointRect(ll).ExpandedMeters(maxMeters)
	best := Snap{DistanceMeters: maxMeters + 1}
	found := false
	s.segs.search(search, func(_ geo.Rect, ref SegmentRef) bool {
		w := s.m.Way(ref.WayID)
		if w == nil || ref.Index+1 >= len(w.NodeIDs) {
			return true
		}
		na := s.m.Node(w.NodeIDs[ref.Index])
		nb := s.m.Node(w.NodeIDs[ref.Index+1])
		if na == nil || nb == nil {
			return true
		}
		pa := s.m.NodePosition(na)
		pb := s.m.NodePosition(nb)
		cp, t := geo.ClosestPointOnSegment(ll, pa, pb)
		d := geo.DistanceMeters(ll, cp)
		if d < best.DistanceMeters {
			nodeID := na.ID
			if t > 0.5 {
				nodeID = nb.ID
			}
			best = Snap{Way: w, Position: cp, DistanceMeters: d, NodeID: nodeID}
			found = true
		}
		return true
	})
	if !found || best.DistanceMeters > maxMeters {
		return Snap{}, false
	}
	return best, true
}

// ForEachSegmentNear calls fn for every way segment whose bounding box
// lies within maxMeters of ll, passing the owning way and the segment's
// endpoint positions. Used by the map matcher to enumerate candidate ways.
func (s *Store) ForEachSegmentNear(ll geo.LatLng, maxMeters float64, fn func(wayID osm.WayID, a, b geo.LatLng)) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	search := pointRect(ll).ExpandedMeters(maxMeters)
	s.segs.search(search, func(_ geo.Rect, ref SegmentRef) bool {
		w := s.m.Way(ref.WayID)
		if w == nil || ref.Index+1 >= len(w.NodeIDs) {
			return true
		}
		na := s.m.Node(w.NodeIDs[ref.Index])
		nb := s.m.Node(w.NodeIDs[ref.Index+1])
		if na == nil || nb == nil {
			return true
		}
		fn(w.ID, s.m.NodePosition(na), s.m.NodePosition(nb))
		return true
	})
}

// TokenPostings returns the node IDs whose tags contain the token, in
// ascending ID order. The returned slice is the caller's to keep.
func (s *Store) TokenPostings(token string) []osm.NodeID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]osm.NodeID(nil), s.inv[strings.ToLower(token)]...)
}

// ForEachPostingMatch merges the sorted posting lists of the given
// (already-tokenized, lowercase) tokens and calls fn once per distinct
// matching node, ascending by ID, with the number of token lists
// containing it. This is the retrieval core of search and forward geocode:
// a k-way merge over the shared lists in place of the map[NodeID]int the
// per-query intersection used to allocate and rehash.
func (s *Store) ForEachPostingMatch(tokens []string, fn func(id osm.NodeID, hits int)) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	lists := make([][]osm.NodeID, 0, len(tokens))
	for _, tok := range tokens {
		if lst := s.inv[tok]; len(lst) > 0 {
			lists = append(lists, lst)
		}
	}
	if len(lists) == 0 {
		return
	}
	idx := make([]int, len(lists))
	for {
		var min osm.NodeID
		found := false
		for i, l := range lists {
			if idx[i] < len(l) && (!found || l[idx[i]] < min) {
				min, found = l[idx[i]], true
			}
		}
		if !found {
			return
		}
		hits := 0
		for i, l := range lists {
			if idx[i] < len(l) && l[idx[i]] == min {
				hits++
				idx[i]++
			}
		}
		fn(min, hits)
	}
}

// TokenCount returns the number of distinct indexed tokens (the internal
// portal posting list is bookkeeping, not a searchable token).
func (s *Store) TokenCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := len(s.inv)
	if _, ok := s.inv[portalToken]; ok {
		n--
	}
	return n
}

// NodeCount returns the number of indexed nodes.
func (s *Store) NodeCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.nodes.len()
}

// PortalNodeIDs returns the IDs of every node tagged as a portal,
// ascending. It reads the reserved portal posting list, so it is O(answer)
// — no map walk — and comes straight off the snapshot on an attached
// server.
func (s *Store) PortalNodeIDs() []osm.NodeID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]osm.NodeID(nil), s.inv[portalToken]...)
}

// Tokenize splits free text into lowercase alphanumeric tokens.
func Tokenize(text string) []string {
	var out []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			out = append(out, strings.ToLower(cur.String()))
			cur.Reset()
		}
	}
	for _, r := range text {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			cur.WriteRune(r)
		} else {
			flush()
		}
	}
	flush()
	return out
}

// TokenizeTags extracts searchable tokens from a tag set: all values, plus
// the keys of flag-like tags. Structural keys (IDs, coordinates) are
// skipped.
func TokenizeTags(tags osm.Tags) []string {
	seen := make(map[string]struct{})
	var out []string
	add := func(tok string) {
		if _, ok := seen[tok]; ok {
			return
		}
		seen[tok] = struct{}{}
		out = append(out, tok)
	}
	for k, v := range tags {
		if k == osm.TagPortalID || k == osm.TagLevel {
			continue
		}
		for _, tok := range Tokenize(v) {
			add(tok)
		}
		// Category keys (amenity=cafe etc.) are searchable by key too.
		switch k {
		case osm.TagAmenity, osm.TagShop, osm.TagBuilding, osm.TagProduct:
			for _, tok := range Tokenize(k) {
				add(tok)
			}
		}
	}
	return out
}
