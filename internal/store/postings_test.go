package store

import (
	"fmt"
	"sort"
	"testing"

	"openflame/internal/geo"
	"openflame/internal/osm"
)

func TestForEachPostingMatchMerge(t *testing.T) {
	s := New(townMap(t))
	type hit struct {
		id osm.NodeID
		c  int
	}
	var got []hit
	// "cafe bean": "cafe" matches both cafes (value + amenity key), "bean"
	// only Bean There.
	s.ForEachPostingMatch([]string{"cafe", "bean"}, func(id osm.NodeID, c int) {
		got = append(got, hit{id, c})
	})
	if len(got) != 2 {
		t.Fatalf("matches: %+v", got)
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i].id < got[j].id }) {
		t.Fatalf("merge not in ID order: %+v", got)
	}
	byID := map[osm.NodeID]int{}
	for _, h := range got {
		byID[h.id] = h.c
	}
	if byID[4] != 2 { // Bean There Cafe: both tokens
		t.Fatalf("bean there hits = %d, want 2 (%+v)", byID[4], got)
	}
	if byID[6] != 1 { // Second Cup: cafe only (amenity key)
		t.Fatalf("second cup hits = %d, want 1 (%+v)", byID[6], got)
	}
	// Unknown tokens contribute nothing and don't disturb the merge.
	got = nil
	s.ForEachPostingMatch([]string{"zzz", "grocery"}, func(id osm.NodeID, c int) {
		got = append(got, hit{id, c})
	})
	if len(got) != 1 || got[0].c != 1 {
		t.Fatalf("unknown-token merge: %+v", got)
	}
}

func TestTokenPostingsSorted(t *testing.T) {
	m := osm.NewMap("sorted", osm.Frame{Kind: osm.FrameGeodetic})
	// Insert with descending positions in space but ascending IDs; then
	// update a middle node so the copy-on-write insert path runs too.
	for i := 0; i < 50; i++ {
		m.AddNode(&osm.Node{Pos: geo.LatLng{Lat: 40, Lng: -80 + float64(i)*1e-4},
			Tags: osm.Tags{osm.TagName: "alpha"}})
	}
	s := New(m)
	if !s.UpdateNodeTags(25, osm.Tags{osm.TagName: "beta"}) {
		t.Fatal("update failed")
	}
	if !s.UpdateNodeTags(25, osm.Tags{osm.TagName: "alpha"}) {
		t.Fatal("update failed")
	}
	lst := s.TokenPostings("alpha")
	if len(lst) != 50 {
		t.Fatalf("postings: %d", len(lst))
	}
	if !sort.SliceIsSorted(lst, func(i, j int) bool { return lst[i] < lst[j] }) {
		t.Fatalf("posting list unsorted after reinsert: %v", lst)
	}
}

// TestForEachPostingMatchAllocsPin is the allocs/op guard for the
// postings-retrieval core (the analogue of the CH QueryCost pin): the
// merge must touch the shared sorted lists in place — one slice header
// vector and one cursor vector per call, nothing per posting. The old
// implementation allocated and rehashed a map[NodeID]int per query.
func TestForEachPostingMatchAllocsPin(t *testing.T) {
	m := osm.NewMap("pin", osm.Frame{Kind: osm.FrameGeodetic})
	for i := 0; i < 2000; i++ {
		name := fmt.Sprintf("Node %d alpha", i)
		if i%2 == 0 {
			name += " beta"
		}
		m.AddNode(&osm.Node{Pos: geo.LatLng{Lat: 40 + float64(i)*1e-5, Lng: -80},
			Tags: osm.Tags{osm.TagName: name}})
	}
	s := New(m)
	tokens := []string{"alpha", "beta"}
	count := 0
	got := testing.AllocsPerRun(100, func() {
		s.ForEachPostingMatch(tokens, func(id osm.NodeID, c int) { count++ })
	})
	if got > 2 {
		t.Fatalf("ForEachPostingMatch allocs/op = %v, want <= 2", got)
	}
	if count == 0 {
		t.Fatal("merge produced no matches")
	}
}

func BenchmarkForEachPostingMatch(b *testing.B) {
	m := osm.NewMap("bench", osm.Frame{Kind: osm.FrameGeodetic})
	for i := 0; i < 10_000; i++ {
		name := fmt.Sprintf("Node %d alpha", i)
		if i%3 == 0 {
			name += " beta"
		}
		m.AddNode(&osm.Node{Pos: geo.LatLng{Lat: 40 + float64(i)*1e-5, Lng: -80},
			Tags: osm.Tags{osm.TagName: name}})
	}
	s := New(m)
	tokens := []string{"alpha", "beta"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		s.ForEachPostingMatch(tokens, func(id osm.NodeID, c int) { n++ })
		if n == 0 {
			b.Fatal("no matches")
		}
	}
}
