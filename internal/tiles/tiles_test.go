package tiles

import (
	"bytes"
	"image/color"
	"math"
	"testing"

	"openflame/internal/geo"
	"openflame/internal/osm"
	"openflame/internal/raster"
)

func TestFromLatLngKnownTiles(t *testing.T) {
	// Zoom 0: the whole world is tile 0/0/0.
	if got := FromLatLng(geo.LatLng{Lat: 40, Lng: -80}, 0); got != (Coord{0, 0, 0}) {
		t.Fatalf("z0 = %v", got)
	}
	// Zoom 1: northwest quadrant.
	if got := FromLatLng(geo.LatLng{Lat: 40, Lng: -80}, 1); got != (Coord{1, 0, 0}) {
		t.Fatalf("z1 = %v", got)
	}
	// Equator/prime meridian at zoom 1 is the southeast quadrant corner.
	if got := FromLatLng(geo.LatLng{Lat: -0.1, Lng: 0.1}, 1); got != (Coord{1, 1, 1}) {
		t.Fatalf("z1 se = %v", got)
	}
}

func TestTileBoundsRoundTrip(t *testing.T) {
	ll := geo.LatLng{Lat: 40.4406, Lng: -79.9959}
	for _, z := range []int{5, 10, 14, 18} {
		c := FromLatLng(ll, z)
		b := c.Bounds()
		if !b.Contains(ll) {
			t.Fatalf("z%d tile %v bounds %v miss the point", z, c, b)
		}
	}
}

func TestTileBoundsAdjacent(t *testing.T) {
	c := Coord{Z: 10, X: 300, Y: 380}
	right := Coord{Z: 10, X: 301, Y: 380}
	if math.Abs(c.Bounds().MaxLng-right.Bounds().MinLng) > 1e-9 {
		t.Fatal("adjacent tiles do not share an edge")
	}
}

func TestCovering(t *testing.T) {
	r := geo.RectFromCenter(geo.LatLng{Lat: 40.44, Lng: -79.99}, 0.01, 0.01)
	tilesAt14 := Covering(r, 14)
	if len(tilesAt14) == 0 {
		t.Fatal("empty covering")
	}
	// All covering tiles intersect the rect; union contains the rect center.
	found := false
	for _, c := range tilesAt14 {
		if !c.Bounds().Intersects(r) {
			t.Fatalf("tile %v does not intersect", c)
		}
		if c.Bounds().Contains(r.Center()) {
			found = true
		}
	}
	if !found {
		t.Fatal("no tile contains the center")
	}
	if Covering(geo.EmptyRect(), 10) != nil {
		t.Fatal("empty rect covered")
	}
}

func townMap(t *testing.T) *osm.Map {
	t.Helper()
	m := osm.NewMap("town", osm.Frame{Kind: osm.FrameGeodetic})
	a := m.AddNode(&osm.Node{Pos: geo.LatLng{Lat: 40.4400, Lng: -79.9960}})
	b := m.AddNode(&osm.Node{Pos: geo.LatLng{Lat: 40.4420, Lng: -79.9940}})
	if _, err := m.AddWay(&osm.Way{NodeIDs: []osm.NodeID{a, b},
		Tags: osm.Tags{osm.TagHighway: "primary", osm.TagName: "Forbes"}}); err != nil {
		t.Fatal(err)
	}
	// A building square.
	var ring []osm.NodeID
	for _, d := range [][2]float64{{40.4405, -79.9955}, {40.4405, -79.9950}, {40.4409, -79.9950}, {40.4409, -79.9955}} {
		ring = append(ring, m.AddNode(&osm.Node{Pos: geo.LatLng{Lat: d[0], Lng: d[1]}}))
	}
	ring = append(ring, ring[0])
	if _, err := m.AddWay(&osm.Way{NodeIDs: ring, Tags: osm.Tags{osm.TagBuilding: "yes"}}); err != nil {
		t.Fatal(err)
	}
	m.AddNode(&osm.Node{Pos: geo.LatLng{Lat: 40.4407, Lng: -79.9952},
		Tags: osm.Tags{osm.TagName: "Corner Grocery", osm.TagShop: "grocery"}})
	return m
}

func TestRenderProducesContent(t *testing.T) {
	m := townMap(t)
	style := DefaultStyle()
	r := NewRenderer(m, style)
	c := FromLatLng(geo.LatLng{Lat: 40.441, Lng: -79.995}, 16)
	canvas := r.Render(c)
	n := canvas.CountNonBackground(style.Background)
	if n < 50 {
		t.Fatalf("rendered only %d foreground pixels", n)
	}
}

func TestRenderEmptyFarTile(t *testing.T) {
	m := townMap(t)
	style := DefaultStyle()
	r := NewRenderer(m, style)
	far := FromLatLng(geo.LatLng{Lat: -33, Lng: 151}, 16) // Sydney
	canvas := r.Render(far)
	if canvas.CountNonBackground(style.Background) != 0 {
		t.Fatal("far tile has content")
	}
}

func TestRenderPNG(t *testing.T) {
	m := townMap(t)
	r := NewRenderer(m, DefaultStyle())
	c := FromLatLng(geo.LatLng{Lat: 40.441, Lng: -79.995}, 16)
	png, err := r.RenderPNG(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(png) == 0 || !bytes.HasPrefix(png, []byte("\x89PNG")) {
		t.Fatal("not a PNG")
	}
	img, err := raster.DecodePNG(bytes.NewReader(png))
	if err != nil {
		t.Fatal(err)
	}
	if img.Bounds().Dx() != Size {
		t.Fatalf("tile width %d", img.Bounds().Dx())
	}
}

func TestCache(t *testing.T) {
	m := townMap(t)
	cache := NewCache(NewRenderer(m, DefaultStyle()))
	c := FromLatLng(geo.LatLng{Lat: 40.441, Lng: -79.995}, 15)
	b1, err := cache.Get(c)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := cache.Get(c)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("cache returned different bytes")
	}
	if cache.Hits != 1 || cache.Misses != 1 {
		t.Fatalf("hits=%d misses=%d", cache.Hits, cache.Misses)
	}
}

func TestPrerender(t *testing.T) {
	m := townMap(t)
	cache := NewCache(NewRenderer(m, DefaultStyle()))
	n, err := cache.Prerender(m.Bounds(), 14, 16)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 || cache.Len() == 0 {
		t.Fatal("nothing prerendered")
	}
	if cache.Len() != n {
		t.Fatalf("cache len %d != rendered %d", cache.Len(), n)
	}
	// Subsequent gets are all hits.
	before := cache.Misses
	if _, err := cache.Get(FromLatLng(geo.LatLng{Lat: 40.4407, Lng: -79.9952}, 15)); err != nil {
		t.Fatal(err)
	}
	if cache.Misses != before {
		t.Fatal("prerendered tile missed")
	}
}

func TestStitchOverlaysIndoorOnOutdoor(t *testing.T) {
	outdoor := townMap(t)
	// Indoor map anchored inside the building.
	indoor := osm.NewMap("store", osm.Frame{
		Kind:   osm.FrameLocal,
		Anchor: geo.LatLng{Lat: 40.4406, Lng: -79.9954},
	})
	a := indoor.AddNode(&osm.Node{Local: geo.Point{X: 0, Y: 0}})
	b := indoor.AddNode(&osm.Node{Local: geo.Point{X: 20, Y: 0}})
	if _, err := indoor.AddWay(&osm.Way{NodeIDs: []osm.NodeID{a, b},
		Tags: osm.Tags{osm.TagHighway: "corridor", osm.TagIndoor: "yes"}}); err != nil {
		t.Fatal(err)
	}

	style := DefaultStyle()
	indoorStyle := DefaultStyle()
	indoorStyle.Road = color.RGBA{0, 120, 255, 255}

	c := FromLatLng(geo.LatLng{Lat: 40.4406, Lng: -79.9954}, 17)
	base := NewRenderer(outdoor, style).Render(c)
	over := NewRenderer(indoor, indoorStyle).Render(c)
	overCount := over.CountNonBackground(indoorStyle.Background)
	if overCount == 0 {
		t.Fatal("indoor layer empty")
	}
	stitched := Stitch([]*raster.Canvas{base, over}, []color.RGBA{style.Background, indoorStyle.Background})
	if stitched.CountNonBackground(style.Background) < overCount {
		t.Fatal("stitched tile lost indoor content")
	}
}

func TestStitchEmpty(t *testing.T) {
	out := Stitch(nil, nil)
	if out.W != Size || out.H != Size {
		t.Fatal("empty stitch wrong size")
	}
}

func BenchmarkRenderTileZ16(b *testing.B) {
	m := osm.NewMap("bench", osm.Frame{Kind: osm.FrameGeodetic})
	// A denser map: 20 streets.
	for i := 0; i < 20; i++ {
		a := m.AddNode(&osm.Node{Pos: geo.LatLng{Lat: 40.44 + float64(i)*0.0002, Lng: -79.998}})
		bb := m.AddNode(&osm.Node{Pos: geo.LatLng{Lat: 40.44 + float64(i)*0.0002, Lng: -79.992}})
		if _, err := m.AddWay(&osm.Way{NodeIDs: []osm.NodeID{a, bb},
			Tags: osm.Tags{osm.TagHighway: "residential"}}); err != nil {
			b.Fatal(err)
		}
	}
	r := NewRenderer(m, DefaultStyle())
	c := FromLatLng(geo.LatLng{Lat: 40.442, Lng: -79.995}, 16)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Render(c)
	}
}

func TestCacheInvalidateRect(t *testing.T) {
	m := townMap(t)
	cache := NewCache(NewRenderer(m, DefaultStyle()))
	poi := geo.LatLng{Lat: 40.4405, Lng: -79.9950} // the cafe
	near := FromLatLng(poi, 16)
	far := FromLatLng(geo.LatLng{Lat: -33, Lng: 151}, 16) // Sydney
	for _, c := range []Coord{near, far} {
		if _, err := cache.Get(c); err != nil {
			t.Fatal(err)
		}
	}
	if n := cache.InvalidateRect(geo.EmptyRect().ExpandToInclude(poi)); n < 1 {
		t.Fatalf("invalidated %d tiles, want >= 1", n)
	}
	if cache.Len() == 0 {
		t.Fatal("unrelated tile was invalidated too")
	}
	// The dropped tile re-renders on next use.
	misses := cache.Misses
	if _, err := cache.Get(near); err != nil {
		t.Fatal(err)
	}
	if cache.Misses != misses+1 {
		t.Fatal("invalidated tile served from cache")
	}
	// An empty rect invalidates nothing.
	if n := cache.InvalidateRect(geo.EmptyRect()); n != 0 {
		t.Fatalf("empty rect invalidated %d tiles", n)
	}
}

// TestCacheInvalidateRectPadding pins the edge-bleed rule: a point on the
// boundary between two tiles invalidates both, because strokes and POI
// dots paint a few pixels into the neighbor.
func TestCacheInvalidateRectPadding(t *testing.T) {
	m := townMap(t)
	cache := NewCache(NewRenderer(m, DefaultStyle()))
	c := FromLatLng(geo.LatLng{Lat: 40.4405, Lng: -79.9950}, 15)
	right := Coord{Z: c.Z, X: c.X + 1, Y: c.Y}
	for _, coord := range []Coord{c, right} {
		if _, err := cache.Get(coord); err != nil {
			t.Fatal(err)
		}
	}
	// A point on the shared edge (the left tile's max longitude).
	edge := geo.LatLng{Lat: 40.4405, Lng: c.Bounds().MaxLng}
	if n := cache.InvalidateRect(geo.EmptyRect().ExpandToInclude(edge)); n != 2 {
		t.Fatalf("edge point invalidated %d tiles, want both neighbors", n)
	}
}

func TestCacheInvalidateAll(t *testing.T) {
	m := townMap(t)
	cache := NewCache(NewRenderer(m, DefaultStyle()))
	if _, err := cache.Get(FromLatLng(geo.LatLng{Lat: 40.4405, Lng: -79.9950}, 15)); err != nil {
		t.Fatal(err)
	}
	if n := cache.InvalidateAll(); n != 1 {
		t.Fatalf("dropped %d tiles", n)
	}
	if cache.Len() != 0 {
		t.Fatalf("cache still holds %d tiles", cache.Len())
	}
}
