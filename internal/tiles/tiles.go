// Package tiles implements the tile rendering service (§4): Web-Mercator
// tile addressing, a style-driven renderer that rasterizes a map's ways and
// POIs into 256×256 PNG tiles, a pre-rendered tile cache (the centralized
// pipeline of Figure 1), and client-side compositing of tiles arriving from
// multiple federated servers (§5.2).
package tiles

import (
	"bytes"
	"fmt"
	"image/color"
	"math"
	"sync"

	"openflame/internal/geo"
	"openflame/internal/osm"
	"openflame/internal/raster"
)

// Size is the tile edge length in pixels.
const Size = 256

// MaxZoom bounds tile addressing.
const MaxZoom = 22

// Coord addresses a Web-Mercator tile.
type Coord struct {
	Z int `json:"z"`
	X int `json:"x"`
	Y int `json:"y"`
}

// String implements fmt.Stringer ("z/x/y").
func (c Coord) String() string { return fmt.Sprintf("%d/%d/%d", c.Z, c.X, c.Y) }

// FromLatLng returns the tile containing ll at zoom z.
func FromLatLng(ll geo.LatLng, z int) Coord {
	n := float64(int(1) << uint(z))
	x := int((ll.Lng + 180) / 360 * n)
	latRad := geo.DegToRad(ll.Lat)
	y := int((1 - math.Log(math.Tan(latRad)+1/math.Cos(latRad))/math.Pi) / 2 * n)
	max := int(n) - 1
	if x < 0 {
		x = 0
	}
	if x > max {
		x = max
	}
	if y < 0 {
		y = 0
	}
	if y > max {
		y = max
	}
	return Coord{Z: z, X: x, Y: y}
}

// Bounds returns the geodetic rectangle covered by the tile.
func (c Coord) Bounds() geo.Rect {
	n := float64(int(1) << uint(c.Z))
	lngMin := float64(c.X)/n*360 - 180
	lngMax := float64(c.X+1)/n*360 - 180
	latMax := tileLat(float64(c.Y), n)
	latMin := tileLat(float64(c.Y+1), n)
	return geo.Rect{MinLat: latMin, MinLng: lngMin, MaxLat: latMax, MaxLng: lngMax}
}

func tileLat(y, n float64) float64 {
	return geo.RadToDeg(math.Atan(math.Sinh(math.Pi * (1 - 2*y/n))))
}

// Covering returns the tiles at zoom z intersecting r.
func Covering(r geo.Rect, z int) []Coord {
	if r.IsEmpty() {
		return nil
	}
	tl := FromLatLng(geo.LatLng{Lat: r.MaxLat, Lng: r.MinLng}, z)
	br := FromLatLng(geo.LatLng{Lat: r.MinLat, Lng: r.MaxLng}, z)
	var out []Coord
	for x := tl.X; x <= br.X; x++ {
		for y := tl.Y; y <= br.Y; y++ {
			out = append(out, Coord{Z: z, X: x, Y: y})
		}
	}
	return out
}

// project maps ll to pixel coordinates within tile c.
func (c Coord) project(ll geo.LatLng) (float64, float64) {
	n := float64(int(1) << uint(c.Z))
	x := (ll.Lng + 180) / 360 * n
	latRad := geo.DegToRad(ll.Lat)
	y := (1 - math.Log(math.Tan(latRad)+1/math.Cos(latRad))/math.Pi) / 2 * n
	return (x - float64(c.X)) * Size, (y - float64(c.Y)) * Size
}

// Style selects drawing parameters per element.
type Style struct {
	Background color.RGBA
	Road       color.RGBA
	RoadMajor  color.RGBA
	Building   color.RGBA
	Indoor     color.RGBA
	POI        color.RGBA
}

// DefaultStyle returns a readable default palette.
func DefaultStyle() Style {
	return Style{
		Background: color.RGBA{240, 240, 235, 255},
		Road:       color.RGBA{160, 160, 160, 255},
		RoadMajor:  color.RGBA{255, 180, 60, 255},
		Building:   color.RGBA{200, 190, 180, 255},
		Indoor:     color.RGBA{170, 200, 230, 255},
		POI:        color.RGBA{200, 60, 60, 255},
	}
}

// Renderer rasterizes one map into tiles.
type Renderer struct {
	m     *osm.Map
	style Style
}

// NewRenderer creates a renderer for m.
func NewRenderer(m *osm.Map, style Style) *Renderer {
	return &Renderer{m: m, style: style}
}

// Render rasterizes the tile. Content outside the tile is clipped by the
// canvas bounds; geometry is drawn in layer order: buildings, indoor areas,
// roads, POIs.
func (r *Renderer) Render(c Coord) *raster.Canvas {
	canvas := raster.NewCanvas(Size, Size, r.style.Background)
	// Skip work when the map is entirely outside the tile (padded so
	// strokes near the edge still appear).
	tb := c.Bounds().Expanded(0.001, 0.001)
	if !r.m.Bounds().Intersects(tb) {
		return canvas
	}
	type poly struct {
		xs, ys []float64
		col    color.RGBA
	}
	var fills []poly
	var lines []poly
	r.m.Ways(func(w *osm.Way) bool {
		nodes := r.m.WayNodes(w)
		if len(nodes) < 2 {
			return true
		}
		xs := make([]float64, len(nodes))
		ys := make([]float64, len(nodes))
		visible := false
		for i, n := range nodes {
			pos := r.m.NodePosition(n)
			xs[i], ys[i] = c.project(pos)
			if xs[i] >= -Size && xs[i] <= 2*Size && ys[i] >= -Size && ys[i] <= 2*Size {
				visible = true
			}
		}
		if !visible {
			return true
		}
		switch {
		case w.Tags.Has(osm.TagBuilding) && w.IsClosed():
			fills = append(fills, poly{xs, ys, r.style.Building})
		case w.Tags.Has(osm.TagIndoor) && w.IsClosed():
			fills = append(fills, poly{xs, ys, r.style.Indoor})
		case w.Tags.Has(osm.TagHighway):
			col := r.style.Road
			switch w.Tags.Get(osm.TagHighway) {
			case "motorway", "trunk", "primary":
				col = r.style.RoadMajor
			}
			lines = append(lines, poly{xs, ys, col})
		default:
			lines = append(lines, poly{xs, ys, r.style.Road})
		}
		return true
	})
	for _, p := range fills {
		canvas.FillPolygon(p.xs, p.ys, p.col)
	}
	for _, p := range lines {
		thickness := 2
		if c.Z >= 17 {
			thickness = 3
		}
		canvas.DrawPolyline(p.xs, p.ys, thickness, p.col)
	}
	// POIs: named or tagged point features.
	r.m.Nodes(func(n *osm.Node) bool {
		if n.Tags.Get(osm.TagName) == "" && !n.Tags.Has(osm.TagAmenity) &&
			!n.Tags.Has(osm.TagShop) && !n.Tags.Has(osm.TagProduct) {
			return true
		}
		x, y := c.project(r.m.NodePosition(n))
		if x < -4 || x > Size+4 || y < -4 || y > Size+4 {
			return true
		}
		canvas.FillCircle(x, y, 3, r.style.POI)
		return true
	})
	return canvas
}

// RenderPNG renders the tile and encodes it as PNG.
func (r *Renderer) RenderPNG(c Coord) ([]byte, error) {
	var buf bytes.Buffer
	if err := r.Render(c).EncodePNG(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Cache pre-renders and memoizes tiles — the "pre-rendered tiles" store of
// the centralized architecture (Figure 1). Safe for concurrent use.
type Cache struct {
	r  *Renderer
	mu sync.Mutex
	m  map[Coord][]byte
	// Hits and Misses count cache effectiveness.
	Hits, Misses int64
}

// NewCache wraps a renderer with memoization.
func NewCache(r *Renderer) *Cache {
	return &Cache{r: r, m: make(map[Coord][]byte)}
}

// Get returns the PNG bytes for the tile, rendering on first use. A
// render that raced a map write is served but not memoized: the write's
// InvalidateRect cannot drop a tile that is not cached yet, so inserting
// it would permanently re-cache pre-write pixels. The generation re-check
// under the cache lock closes that window — if the generation still reads
// as it did before the render, the invalidation for any newer write has
// not run yet and will see our entry.
func (c *Cache) Get(coord Coord) ([]byte, error) {
	c.mu.Lock()
	if b, ok := c.m[coord]; ok {
		c.Hits++
		c.mu.Unlock()
		return b, nil
	}
	c.Misses++
	c.mu.Unlock()
	gen := c.r.m.Generation()
	b, err := c.r.RenderPNG(coord)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	if c.r.m.Generation() == gen {
		c.m[coord] = b
	}
	c.mu.Unlock()
	return b, nil
}

// Prerender renders every tile covering r at the zoom range [zMin, zMax],
// returning the number of tiles rendered.
func (c *Cache) Prerender(r geo.Rect, zMin, zMax int) (int, error) {
	n := 0
	for z := zMin; z <= zMax; z++ {
		for _, coord := range Covering(r, z) {
			if _, err := c.Get(coord); err != nil {
				return n, err
			}
			n++
		}
	}
	return n, nil
}

// Len returns the number of cached tiles.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// InvalidateRect drops cached tiles whose coverage intersects r, returning
// how many were dropped. Each tile's bounds are padded by 5% of its span
// before the test: strokes and POI dots bleed a few pixels across tile
// edges, so content changing just outside a tile can still change its
// pixels. Dropped tiles re-render on next Get.
func (c *Cache) InvalidateRect(r geo.Rect) int {
	if r.IsEmpty() {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for coord := range c.m {
		b := coord.Bounds()
		pad := 0.05
		b = b.Expanded((b.MaxLat-b.MinLat)*pad, (b.MaxLng-b.MinLng)*pad)
		if b.Intersects(r) {
			delete(c.m, coord)
			n++
		}
	}
	return n
}

// InvalidateAll drops every cached tile, returning how many were dropped.
func (c *Cache) InvalidateAll() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := len(c.m)
	c.m = make(map[Coord][]byte)
	return n
}

// Stitch composites tiles for the same coordinate rendered by multiple map
// servers, in order (later layers on top), treating each layer's background
// as transparent. This is the client-side assembly of §5.2.
func Stitch(layers []*raster.Canvas, backgrounds []color.RGBA) *raster.Canvas {
	if len(layers) == 0 {
		return raster.NewCanvas(Size, Size, color.RGBA{0, 0, 0, 255})
	}
	out := raster.NewCanvas(layers[0].W, layers[0].H, backgrounds[0])
	raster.Composite(out, layers[0], color.RGBA{1, 2, 3, 4}) // copy all pixels
	for i := 1; i < len(layers); i++ {
		raster.Composite(out, layers[i], backgrounds[i])
	}
	return out
}
