package client_test

import (
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync/atomic"
	"testing"
)

// TestGeocodeBatchedMatchesPerCall pins the batched client against the
// per-call one: identical results, strictly fewer HTTP round trips — the
// world provider's whole coarse suffix walk plus its fine query collapse
// into one /v1/batch POST.
func TestGeocodeBatchedMatchesPerCall(t *testing.T) {
	f, w, c := worldFixture(t)
	cb := f.NewClient()
	cb.UseBatch = true

	store := w.Stores[0]
	address := store.Products[0] + " shelf, " + store.Map.Name

	want, err := c.Geocode(address)
	if err != nil {
		t.Fatal(err)
	}
	perCall := c.RequestCount()
	got, err := cb.Geocode(address)
	if err != nil {
		t.Fatal(err)
	}
	batched := cb.RequestCount()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("batched geocode differs:\n%+v\n%+v", got, want)
	}
	if batched >= perCall {
		t.Fatalf("batched geocode used %d requests, per-call used %d", batched, perCall)
	}
	// A second identical geocode must not re-probe batch capability.
	if _, err := cb.Geocode(address); err != nil {
		t.Fatal(err)
	}
	if d := cb.RequestCount() - batched; d != batched {
		t.Fatalf("second batched geocode cost %d requests, first cost %d", d, batched)
	}
}

// TestGeocodeBatchFallsBackToLegacyServer points the batched client at a
// world provider that predates /v1/batch (404): the client must fall back
// to the per-call walk transparently, answer identically, and remember the
// server as batch-incapable so the probe is not repeated.
func TestGeocodeBatchFallsBackToLegacyServer(t *testing.T) {
	f, w, c := worldFixture(t)
	world := f.FindServer("world-map")
	if world == nil {
		t.Fatal("no world server")
	}
	// A legacy façade over the live world server: everything passes
	// through except the batch endpoint.
	inner := world.Server.Handler()
	var batchProbes atomic.Int32
	legacy := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/batch" {
			batchProbes.Add(1)
			http.NotFound(rw, r)
			return
		}
		inner.ServeHTTP(rw, r)
	}))
	defer legacy.Close()

	cb := f.NewClient()
	cb.UseBatch = true
	cb.WorldURL = legacy.URL
	c.WorldURL = legacy.URL

	store := w.Stores[0]
	address := store.Products[0] + " shelf, " + store.Map.Name
	want, err := c.Geocode(address)
	if err != nil {
		t.Fatal(err)
	}
	got, err := cb.Geocode(address)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("fallback geocode differs:\n%+v\n%+v", got, want)
	}
	if batchProbes.Load() != 1 {
		t.Fatalf("batch endpoint probed %d times, want 1", batchProbes.Load())
	}
	// The 404 was remembered: a second geocode goes straight per-call.
	if _, err := cb.Geocode(address); err != nil {
		t.Fatal(err)
	}
	if batchProbes.Load() != 1 {
		t.Fatalf("batch endpoint re-probed after 404 (%d probes)", batchProbes.Load())
	}
}

// TestRouteBatchedMatchesPerCall pins stitched routing under batching:
// byte-for-byte the same composition, never more round trips.
func TestRouteBatchedMatchesPerCall(t *testing.T) {
	f, w, c := worldFixture(t)
	cb := f.NewClient()
	cb.UseBatch = true

	store := w.Stores[0]
	from := trueEntrance(store)
	shelf, err := c.Geocode(store.Products[0] + " shelf, " + store.Map.Name)
	if err != nil {
		t.Fatal(err)
	}

	before := c.RequestCount()
	want, err := c.Route(from, shelf.Position)
	if err != nil {
		t.Fatal(err)
	}
	perCall := c.RequestCount() - before
	got, err := cb.Route(from, shelf.Position)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("batched route differs:\n%+v\n%+v", got, want)
	}
	if cb.RequestCount() > perCall {
		t.Fatalf("batched route used %d requests, per-call baseline %d", cb.RequestCount(), perCall)
	}
}
