package client

import (
	"context"
	"math"
	"testing"

	"openflame/internal/discovery"
	"openflame/internal/geo"
	"openflame/internal/s2cell"
	"openflame/internal/wire"
)

func TestMetaDijkstraPicksCheapestComposition(t *testing.T) {
	// SRC → p1 → DST (cost 5+5) vs SRC → DST direct (cost 20).
	adj := map[metaNode][]metaEdge{
		metaSrc: {
			{to: "p1", cost: 5, server: "A"},
			{to: metaDst, cost: 20, server: "A"},
		},
		"p1": {
			{to: metaDst, cost: 5, server: "B"},
		},
	}
	chain, total, err := metaDijkstra(adj, metaSrc, metaDst)
	if err != nil {
		t.Fatal(err)
	}
	if total != 10 {
		t.Fatalf("total = %v", total)
	}
	if len(chain) != 2 || chain[0].server != "A" || chain[1].server != "B" {
		t.Fatalf("chain = %+v", chain)
	}
}

func TestMetaDijkstraNoPath(t *testing.T) {
	adj := map[metaNode][]metaEdge{
		metaSrc: {{to: "p1", cost: 1, server: "A"}},
		// p1 has no outgoing edges.
	}
	if _, _, err := metaDijkstra(adj, metaSrc, metaDst); err == nil {
		t.Fatal("missing path not reported")
	}
	if _, _, err := metaDijkstra(map[metaNode][]metaEdge{}, metaSrc, metaDst); err == nil {
		t.Fatal("empty graph not reported")
	}
}

func TestMetaDijkstraMultiPortal(t *testing.T) {
	// Two portals; the cheaper pairing must win even when the first edge
	// is more expensive.
	adj := map[metaNode][]metaEdge{
		metaSrc: {
			{to: "p1", cost: 1, server: "A"},
			{to: "p2", cost: 4, server: "A"},
		},
		"p1": {{to: metaDst, cost: 10, server: "B"}},
		"p2": {{to: metaDst, cost: 2, server: "B"}},
	}
	chain, total, err := metaDijkstra(adj, metaSrc, metaDst)
	if err != nil {
		t.Fatal(err)
	}
	if total != 6 {
		t.Fatalf("total = %v (chain %+v)", total, chain)
	}
	if chain[0].to != "p2" {
		t.Fatalf("wrong portal: %+v", chain)
	}
}

func TestCoverageArea(t *testing.T) {
	lvl12 := s2cell.FromLatLngLevel(geo.LatLng{Lat: 40, Lng: -80}, 12)
	lvl16 := s2cell.FromLatLngLevel(geo.LatLng{Lat: 40, Lng: -80}, 16)
	big := coverageArea([]string{lvl12.Token()})
	small := coverageArea([]string{lvl16.Token()})
	if big <= small {
		t.Fatalf("area ordering wrong: %v vs %v", big, small)
	}
	// A level-12 cell equals 256 level-16 cells.
	if ratio := big / small; math.Abs(ratio-256) > 1e-9 {
		t.Fatalf("ratio = %v", ratio)
	}
	if coverageArea([]string{"not-a-token"}) != 0 {
		t.Fatal("bad token contributed area")
	}
	if coverageArea(nil) != 0 {
		t.Fatal("empty coverage has area")
	}
}

func TestAnchorServersPrefersFinestThenSmallest(t *testing.T) {
	// Without Info (no servers running), area lookup fails for all and the
	// finest-level set is returned unfiltered.
	c := New(discovery.NewClient(nil, ""), nil)
	anns := []discovery.Announcement{
		{Name: "coarse", URL: "http://x", Level: 12},
		{Name: "fine-a", URL: "http://a", Level: 16},
		{Name: "fine-b", URL: "http://b", Level: 16},
	}
	got := c.anchorServers(context.Background(), anns)
	if len(got) != 2 {
		t.Fatalf("anchors = %v", got)
	}
	for _, a := range got {
		if a.Level != 16 {
			t.Fatalf("coarse announcement anchored: %+v", a)
		}
	}
	if got := c.anchorServers(context.Background(), nil); len(got) != 0 {
		t.Fatalf("empty anns anchored: %v", got)
	}
}

func TestStitchedRoutePointsDedup(t *testing.T) {
	shared := wire.RoutePoint{NodeID: 7, Position: geo.LatLng{Lat: 40, Lng: -80}}
	r := StitchedRoute{Legs: []Leg{
		{Points: []wire.RoutePoint{{NodeID: 1, Position: geo.LatLng{Lat: 39.9, Lng: -80}}, shared}},
		{Points: []wire.RoutePoint{shared, {NodeID: 9, Position: geo.LatLng{Lat: 40.1, Lng: -80}}}},
	}}
	pts := r.Points()
	if len(pts) != 3 {
		t.Fatalf("points = %v", pts)
	}
	if pts[1] != shared {
		t.Fatalf("shared portal point lost: %v", pts)
	}
}
