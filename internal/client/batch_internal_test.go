package client

import (
	"context"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"

	"openflame/internal/mapserver"
	"openflame/internal/wire"
	"openflame/internal/worldgen"
)

func TestGroupLegsByServer(t *testing.T) {
	chain := []metaEdge{{server: "A"}, {server: "B"}, {server: "A"}, {server: "C"}}
	got := groupLegsByServer(chain)
	want := [][]int{{0, 2}, {1}, {3}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("groups = %v, want %v", got, want)
	}
}

// TestExpandLegsBatchOneRoundTrip drives the multi-leg-per-server path the
// generated world rarely produces: two chosen legs on the same server must
// expand in a single /v1/batch POST and match the per-call expansions.
func TestExpandLegsBatchOneRoundTrip(t *testing.T) {
	city := worldgen.GenCity(worldgen.DefaultCityParams())
	srv, err := mapserver.New(mapserver.Config{Name: "city", Map: city})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	p1 := srv.Geocode(wire.GeocodeRequest{Query: "1st Street", Limit: 1}).Results[0].Position
	p2 := srv.Geocode(wire.GeocodeRequest{Query: "2nd Street", Limit: 1}).Results[0].Position
	p3 := srv.Geocode(wire.GeocodeRequest{Query: "3rd Street", Limit: 1}).Results[0].Position
	chain := []metaEdge{
		{server: ts.URL, fromPos: p1, toPos: p2},
		{server: ts.URL, fromPos: p2, toPos: p3},
	}

	c := New(nil, http.DefaultClient)
	c.UseBatch = true
	legs := make([]Leg, len(chain))
	lengths := make([]float64, len(chain))
	legErrs := make([]error, len(chain))
	expanded := make([]bool, len(chain))
	before := c.RequestCount()
	if !c.expandLegsBatch(context.Background(), chain, nil, []int{0, 1}, legs, lengths, legErrs, expanded) {
		t.Fatal("batch expansion fell back")
	}
	// One /v1/batch POST plus one /info fetch for the leg label.
	if d := c.RequestCount() - before; d != 2 {
		t.Fatalf("batch expansion of 2 legs cost %d requests, want 2", d)
	}
	for i := range chain {
		if legErrs[i] != nil || !expanded[i] {
			t.Fatalf("leg %d not expanded: %v", i, legErrs[i])
		}
		if legs[i].Server != "city" || len(legs[i].Points) == 0 {
			t.Fatalf("leg %d = %+v", i, legs[i])
		}
		// Identical to the per-call expansion.
		want := srv.Route(wire.RouteRequest{From: chain[i].fromPos, To: chain[i].toPos})
		if legs[i].CostSeconds != want.CostSeconds || lengths[i] != want.LengthMeters {
			t.Fatalf("leg %d cost/length %v/%v, want %v/%v",
				i, legs[i].CostSeconds, lengths[i], want.CostSeconds, want.LengthMeters)
		}
	}
}
