package client

import (
	"context"
	"testing"
	"time"

	"openflame/internal/wire"
)

// TestSessionObserve pins the mark-merge rule: one slot per (group,
// origin) — same-incarnation marks advance monotonically, a new log
// incarnation replaces its origin's slot, distinct origins coexist (so
// concurrent reads answered by different members can never discard each
// other's observations), and groups are independent.
func TestSessionObserve(t *testing.T) {
	s := NewSession()
	s.observe("city", wire.SessionMark{Origin: "a", Log: 1, Seq: 5})
	s.observe("city", wire.SessionMark{Origin: "a", Log: 1, Seq: 3}) // stale echo: ignored
	if ms := s.marksFor("city"); len(ms) != 1 || ms[0].Seq != 5 {
		t.Fatalf("marks = %+v", ms)
	}
	s.observe("city", wire.SessionMark{Origin: "a", Log: 1, Seq: 8})
	if ms := s.marksFor("city"); len(ms) != 1 || ms[0].Seq != 8 {
		t.Fatalf("marks = %+v", ms)
	}
	// A second origin fills its own slot; both marks are now required.
	s.observe("city", wire.SessionMark{Origin: "b", Log: 7, Seq: 2})
	ms := s.marksFor("city")
	if len(ms) != 2 || ms[0].Origin != "a" || ms[0].Seq != 8 || ms[1].Origin != "b" || ms[1].Seq != 2 {
		t.Fatalf("marks = %+v, want a@8 and b@2", ms)
	}
	// Concurrent-read interleaving cannot lose observations: whatever
	// order a@9 and b@20 land in, both survive.
	s.observe("city", wire.SessionMark{Origin: "b", Log: 7, Seq: 20})
	s.observe("city", wire.SessionMark{Origin: "a", Log: 1, Seq: 9})
	ms = s.marksFor("city")
	if len(ms) != 2 || ms[0].Seq != 9 || ms[1].Seq != 20 {
		t.Fatalf("marks = %+v, want a@9 and b@20", ms)
	}
	// A restarted origin (new incarnation) replaces its slot — even
	// downward: the old log can never be vouched for again.
	s.observe("city", wire.SessionMark{Origin: "a", Log: 2, Seq: 1})
	ms = s.marksFor("city")
	if len(ms) != 2 || ms[0].Log != 2 || ms[0].Seq != 1 {
		t.Fatalf("marks after restart = %+v, want a(log2)@1", ms)
	}
	if ms := s.marksFor("campus"); ms != nil {
		t.Fatalf("unrelated group marks = %+v", ms)
	}
}

// TestCallOptsPlumbing: options resolve into the context and the derived
// helpers read them back; defaults reproduce the client-level knobs.
func TestCallOptsPlumbing(t *testing.T) {
	c := New(nil, nil)
	c.UseBatch = true
	ctx := c.withCallOpts(context.Background(), nil)
	if !c.batchEnabled(ctx) {
		t.Fatal("default call lost the client's UseBatch")
	}
	if sessionFrom(ctx) != nil {
		t.Fatal("default call carries a session")
	}
	ctx = c.withCallOpts(context.Background(), []CallOption{WithNoBatch()})
	if c.batchEnabled(ctx) {
		t.Fatal("WithNoBatch ignored")
	}
	ctx = c.withCallOpts(context.Background(), []CallOption{WithConsistency(ConsistencySession)})
	if sessionFrom(ctx) != c.Session() {
		t.Fatal("session consistency did not bind the client's shared session")
	}
	own := NewSession()
	ctx = c.withCallOpts(context.Background(), []CallOption{WithSession(own)})
	if sessionFrom(ctx) != own {
		t.Fatal("explicit session lost")
	}
	// Last option wins: an explicit eventual level opts back out of an
	// earlier session.
	evctx := c.withCallOpts(context.Background(), []CallOption{
		WithSession(own), WithConsistency(ConsistencyEventual)})
	if sessionFrom(evctx) != nil {
		t.Fatal("WithConsistency(ConsistencyEventual) did not override WithSession")
	}
	// consistencyFor: empty envelope before the first read, the marks
	// after.
	if rc := consistencyFor(ctx, "city"); rc == nil || len(rc.Marks) != 0 {
		t.Fatalf("first-read envelope = %+v", rc)
	}
	own.observe("city", wire.SessionMark{Origin: "a", Seq: 4})
	rc := consistencyFor(ctx, "city")
	if rc == nil || len(rc.Marks) != 1 || rc.Marks[0].Origin != "a" || rc.Marks[0].Seq != 4 {
		t.Fatalf("envelope = %+v", rc)
	}
	// Timeout override.
	c.PerServerTimeout = time.Minute
	ctx = c.withCallOpts(context.Background(), []CallOption{WithTimeout(time.Millisecond)})
	sctx, cancel := c.perServerCtx(ctx)
	defer cancel()
	dl, ok := sctx.Deadline()
	if !ok || time.Until(dl) > 10*time.Millisecond {
		t.Fatalf("WithTimeout override lost (deadline %v)", dl)
	}
	// WithTimeout(0) removes the client-level cap for the call.
	ctx = c.withCallOpts(context.Background(), []CallOption{WithTimeout(0)})
	sctx, cancel2 := c.perServerCtx(ctx)
	defer cancel2()
	if _, ok := sctx.Deadline(); ok {
		t.Fatal("WithTimeout(0) did not lift the per-server cap")
	}
}

// TestBatchUnsupExpiry: the batch-incapability memory is a probe window,
// not a verdict — entries expire so an upgraded server regains batching,
// a batch-speaking server's entry is cleared outright, and dead entries
// are pruned rather than accumulated.
func TestBatchUnsupExpiry(t *testing.T) {
	c := New(nil, nil)
	c.markBatchUnsupported("http://a")
	if !c.batchUnsupported("http://a") {
		t.Fatal("fresh entry not honored")
	}
	// Age the entry past the reprobe interval: the next check deletes it.
	c.batchMu.Lock()
	c.batchUnsup["http://a"] = time.Now().Add(-batchReprobeInterval - time.Second)
	c.batchMu.Unlock()
	if c.batchUnsupported("http://a") {
		t.Fatal("expired entry still suppresses batching")
	}
	c.batchMu.Lock()
	_, still := c.batchUnsup["http://a"]
	c.batchMu.Unlock()
	if still {
		t.Fatal("expired entry not deleted on observation")
	}
	// Marking a new server prunes other expired entries.
	c.markBatchUnsupported("http://b")
	c.batchMu.Lock()
	c.batchUnsup["http://b"] = time.Now().Add(-batchReprobeInterval - time.Second)
	c.batchMu.Unlock()
	c.markBatchUnsupported("http://c")
	c.batchMu.Lock()
	_, bStill := c.batchUnsup["http://b"]
	n := len(c.batchUnsup)
	c.batchMu.Unlock()
	if bStill || n != 1 {
		t.Fatalf("prune left %d entries (b present: %v)", n, bStill)
	}
	// A successful batch clears the memory immediately.
	c.clearBatchUnsupported("http://c")
	if c.batchUnsupported("http://c") {
		t.Fatal("cleared entry still suppresses batching")
	}
}
