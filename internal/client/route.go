package client

import (
	"container/heap"
	"context"
	"fmt"
	"math"
	"sort"

	"openflame/internal/discovery"
	"openflame/internal/fanout"
	"openflame/internal/geo"
	"openflame/internal/s2cell"
	"openflame/internal/wire"
)

// Leg is one server's contribution to a stitched route.
type Leg struct {
	Server      string
	URL         string
	Points      []wire.RoutePoint
	CostSeconds float64
}

// StitchedRoute is a cross-server route assembled by the client (§5.2:
// "the client would collect paths from all relevant map servers, and stitch
// them together such that the final path optimizes a metric of interest").
type StitchedRoute struct {
	Legs         []Leg
	CostSeconds  float64
	LengthMeters float64
	// ServersUsed counts distinct servers contributing legs.
	ServersUsed int
}

// Points flattens the legs into one polyline.
func (r StitchedRoute) Points() []wire.RoutePoint {
	var out []wire.RoutePoint
	for _, leg := range r.Legs {
		for _, p := range leg.Points {
			if len(out) > 0 && out[len(out)-1].Position == p.Position {
				continue
			}
			out = append(out, p)
		}
	}
	return out
}

// metaNode identifies a vertex of the portal meta-graph.
type metaNode string

const (
	metaSrc metaNode = "\x00src"
	metaDst metaNode = "\x00dst"
)

// metaEdge is a priced leg candidate.
type metaEdge struct {
	to     metaNode
	cost   float64
	server string // URL of the replica that priced this leg
	// group indexes the replica group the pricing server belongs to; leg
	// expansion fails over to the group's siblings if the pricer has gone
	// away between pricing and expansion.
	group int
	// endpoint descriptors for expanding the leg later
	fromNode int64 // 0 = use fromPos
	toNode   int64 // 0 = use toPos
	fromPos  geo.LatLng
	toPos    geo.LatLng
}

// RouteV2 plans a route from one position to another across the
// federation: it discovers servers at the endpoints and along the way,
// prices legs between portals with route-matrix calls, finds the optimal
// composition on the portal meta-graph, and expands each chosen leg into
// its full path. The three discovery sweeps (source, destination, along
// the way), the per-server meta-graph pricing, and the final leg
// expansions each fan out concurrently on the client's bounded pool;
// pricing failures skip the server, leg-expansion failures fail the route
// (a chosen leg is not optional).
func (c *Client) RouteV2(ctx context.Context, from, to geo.LatLng, opts ...CallOption) (StitchedRoute, error) {
	ctx = c.withCallOpts(ctx, opts)
	// One retry budget for the whole route: pricing, leg expansion, and
	// anchor lookups share it rather than each getting a fresh one.
	ctx = c.withRetryBudget(ctx)
	// 1. Discover the servers involved (§5.2: endpoints plus the way).
	// Endpoints anchor to the MOST SPECIFIC (finest-level) servers
	// covering them: a shelf inside a store belongs to the store's map,
	// not to the world map that merely snaps it to the nearest street.
	// These are whole discovery sweeps, not single server calls, so they
	// run on the plain pool — PerServerTimeout must not truncate them.
	var srcAnns, dstAnns, wayAnns []discovery.Announcement
	discoveries := []func(ctx context.Context){
		func(ctx context.Context) { srcAnns = c.disc.DiscoverCtx(ctx, from) },
		func(ctx context.Context) { dstAnns = c.disc.DiscoverCtx(ctx, to) },
		func(ctx context.Context) {
			wayAnns = c.disc.DiscoverAlongPathCtx(ctx, []geo.LatLng{from, to}, 200)
		},
	}
	fanout.ForEach(ctx, len(discoveries), c.MaxConcurrency, func(ctx context.Context, i int) { discoveries[i](ctx) })

	// Plan the discovered servers into replica groups (anchors first, then
	// the remaining endpoint and on-the-way discoveries, deduplicated) and
	// attach the endpoint roles: a group anchors SRC/DST when any of its
	// members was selected as an anchor for that endpoint.
	anchorSrc := urlSet(c.anchorServers(ctx, srcAnns))
	anchorDst := urlSet(c.anchorServers(ctx, dstAnns))
	var all []discovery.Announcement
	all = append(all, srcAnns...)
	all = append(all, dstAnns...)
	all = append(all, wayAnns...)
	groups := planAnnouncements(all)
	// Deterministic pricing order regardless of which discovery sweep
	// surfaced a group first: sort by the group's first member URL (the
	// pre-plan code sorted the URL list the same way), breaking URL ties
	// (one URL transiently announced under two names) on the group key —
	// sort.Slice is unstable, so the tie-break must be total.
	sort.Slice(groups, func(i, j int) bool {
		if groups[i].Replicas[0].URL != groups[j].Replicas[0].URL {
			return groups[i].Replicas[0].URL < groups[j].Replicas[0].URL
		}
		return groups[i].Key < groups[j].Key
	})
	// Dedup by URL across groups, restoring the pre-plan invariant of one
	// pricing call per URL: during a live re-registration under a new
	// name, the old and new records coexist for up to one TTL and would
	// otherwise form two groups around the same server.
	seenURL := map[string]bool{}
	kept := groups[:0]
	for _, g := range groups {
		fresh := false
		for _, a := range g.Replicas {
			if !seenURL[a.URL] {
				fresh = true
			}
		}
		for _, a := range g.Replicas {
			seenURL[a.URL] = true
		}
		if fresh {
			kept = append(kept, g)
		}
	}
	groups = kept
	if len(groups) == 0 {
		return StitchedRoute{}, fmt.Errorf("client: no map servers discovered for route")
	}
	roleOf := func(g planGroup, anchors map[string]bool) bool {
		for _, a := range g.Replicas {
			if anchors[a.URL] {
				return true
			}
		}
		return false
	}

	// 2. Build the meta-graph: price legs via one route-matrix call per
	// replica GROUP — replicas advertise identical portals, so pricing one
	// member covers the region, and a failed member's sibling answers
	// instead. All groups price in parallel; the per-group edge lists land
	// in indexed slots and merge in sorted order so the adjacency (and
	// therefore tie-breaks in the meta-graph search) is deterministic
	// regardless of completion order. Members whose circuit breaker is open
	// are excluded inside the group ordering — legs are never priced on
	// (and so never chosen from) a known-down server.
	type pricedGroup struct {
		edges map[metaNode][]metaEdge
	}
	priced := make([]pricedGroup, len(groups))
	c.forEachGroup(ctx, len(groups), func(ctx context.Context, idx int) {
		g := groups[idx]
		isSrc := roleOf(g, anchorSrc)
		isDst := roleOf(g, anchorDst)
		type endpoint struct {
			node metaNode
			id   int64
			pos  geo.LatLng
		}
		for _, a := range c.orderedReplicas(g) {
			actx, cancel := c.perServerCtx(ctx)
			info, err := c.infoCtx(actx, a.URL)
			if err != nil {
				cancel()
				continue
			}
			var eps []endpoint
			if isSrc {
				eps = append(eps, endpoint{node: metaSrc, pos: from})
			}
			if isDst {
				eps = append(eps, endpoint{node: metaDst, pos: to})
			}
			for _, p := range info.Portals {
				eps = append(eps, endpoint{node: metaNode(p.ID), id: p.NodeID, pos: p.World})
			}
			if len(eps) < 2 {
				cancel()
				return // same for every replica: nothing to price here
			}
			req := wire.RouteMatrixRequest{
				FromNodes:     make([]int64, len(eps)),
				ToNodes:       make([]int64, len(eps)),
				FromPositions: make([]geo.LatLng, len(eps)),
				ToPositions:   make([]geo.LatLng, len(eps)),
			}
			for i, ep := range eps {
				req.FromNodes[i] = ep.id
				req.ToNodes[i] = ep.id
				req.FromPositions[i] = ep.pos
				req.ToPositions[i] = ep.pos
			}
			var resp wire.RouteMatrixResponse
			err = c.callKeyed(actx, g.Key, a.URL, "/routematrix", &req, &resp)
			cancel()
			if err != nil {
				continue // fail over to the next sibling
			}
			edges := map[metaNode][]metaEdge{}
			for i := range eps {
				for j := range eps {
					if i == j || eps[i].node == eps[j].node {
						continue
					}
					// Never route *into* SRC or *out of* DST.
					if eps[j].node == metaSrc || eps[i].node == metaDst {
						continue
					}
					cost := matrixAt(resp, i, j)
					if cost < 0 {
						continue
					}
					edges[eps[i].node] = append(edges[eps[i].node], metaEdge{
						to: eps[j].node, cost: cost, server: a.URL, group: idx,
						fromNode: eps[i].id, toNode: eps[j].id,
						fromPos: eps[i].pos, toPos: eps[j].pos,
					})
				}
			}
			priced[idx] = pricedGroup{edges: edges}
			return
		}
	})
	adj := map[metaNode][]metaEdge{}
	for _, p := range priced {
		for from, edges := range p.edges {
			adj[from] = append(adj[from], edges...)
		}
	}

	// 3. Shortest path SRC→DST on the meta-graph.
	chain, total, err := metaDijkstra(adj, metaSrc, metaDst)
	if err != nil {
		return StitchedRoute{}, err
	}

	// 4. Expand every chosen leg with a full /route call on its server,
	// reassembled in chain order. With batching on, the legs are grouped
	// by server and each group answered in one /v1/batch round trip (a
	// route crossing a server several times pays one round trip, not one
	// per leg); without it — or on servers lacking the endpoint — every
	// leg is its own call, all in parallel.
	legs := make([]Leg, len(chain))
	lengths := make([]float64, len(chain))
	legErrs := make([]error, len(chain))
	expanded := make([]bool, len(chain))
	// expandOne expands leg i, trying the replica that priced it first and
	// failing over to its group siblings — a replica lost between pricing
	// and expansion must not fail the whole route while an identical
	// sibling is healthy. Each attempt gets its own per-server timeout.
	expandOne := func(ctx context.Context, i int) {
		e := chain[i]
		req := wire.RouteRequest{
			FromNode: e.fromNode, ToNode: e.toNode,
			From: e.fromPos, To: e.toPos,
		}
		groupKey := ""
		candidates := []string{e.server}
		if e.group >= 0 && e.group < len(groups) {
			groupKey = groups[e.group].Key
			for _, a := range c.orderedReplicas(groups[e.group]) {
				if a.URL != e.server {
					candidates = append(candidates, a.URL)
				}
			}
		}
		for _, url := range candidates {
			actx, cancel := c.perServerCtx(ctx)
			var resp wire.RouteResponse
			err := c.callKeyed(actx, groupKey, url, "/route", &req, &resp)
			if err != nil {
				cancel()
				legErrs[i] = fmt.Errorf("client: leg expansion on %s failed: %v", url, err)
				continue
			}
			if !resp.Found {
				cancel()
				legErrs[i] = fmt.Errorf("client: leg expansion on %s failed: no route found", url)
				continue
			}
			name := url
			if info, err := c.infoCtx(actx, url); err == nil {
				name = info.Name
			}
			cancel()
			legs[i] = Leg{
				Server: name, URL: url, Points: resp.Points, CostSeconds: resp.CostSeconds,
			}
			lengths[i] = resp.LengthMeters
			legErrs[i] = nil
			expanded[i] = true
			return
		}
	}
	if c.batchEnabled(ctx) {
		// Groups run on the plain pool (not forEachServer) so the batch
		// attempt and each fallback leg get their OWN per-server timeout:
		// a batch that burned its window must not leave the per-leg
		// fallback with an expired context. A single shared semaphore
		// bounds every HTTP call — batch or individual leg — at the
		// client's concurrency limit, so nested fan-out cannot multiply
		// the documented worker bound.
		legGroups := groupLegsByServer(chain)
		limit := c.MaxConcurrency
		if limit <= 0 {
			limit = fanout.DefaultLimit
		}
		sem := make(chan struct{}, limit)
		acquire := func(ctx context.Context) bool {
			select {
			case sem <- struct{}{}:
				return true
			case <-ctx.Done():
				return false
			}
		}
		fanout.ForEach(ctx, len(legGroups), limit, func(ctx context.Context, gi int) {
			idxs := legGroups[gi]
			if len(idxs) > 1 {
				if !acquire(ctx) {
					return
				}
				bctx, cancel := c.perServerCtx(ctx)
				c.expandLegsBatch(bctx, chain, groups, idxs, legs, lengths, legErrs, expanded)
				cancel()
				<-sem
			}
			// Whatever the batch left unexpanded — it was declined (single
			// leg, server lacks the endpoint), or individual sub-items
			// failed on the batched replica — goes through the per-leg
			// path, which fails over to the group's sibling replicas; the
			// legs run in parallel, exactly the per-call fan-out, never
			// serialized. expandOne budgets its own per-attempt timeouts.
			var remaining []int
			for _, i := range idxs {
				if !expanded[i] {
					remaining = append(remaining, i)
				}
			}
			fanout.ForEach(ctx, len(remaining), limit, func(ctx context.Context, k int) {
				if !acquire(ctx) {
					return
				}
				defer func() { <-sem }()
				expandOne(ctx, remaining[k])
			})
		})
	} else {
		c.forEachGroup(ctx, len(chain), expandOne)
	}
	route := StitchedRoute{CostSeconds: total}
	used := map[string]bool{}
	for i, e := range chain {
		if legErrs[i] != nil {
			return StitchedRoute{}, legErrs[i]
		}
		if !expanded[i] {
			// Cancelled before the leg ran.
			return StitchedRoute{}, fmt.Errorf("client: leg expansion on %s aborted: %v", e.server, ctx.Err())
		}
		route.Legs = append(route.Legs, legs[i])
		route.LengthMeters += lengths[i]
		// Count the replica that actually served the leg (failover may
		// have moved it off the replica that priced it).
		used[legs[i].URL] = true
	}
	route.ServersUsed = len(used)
	return route, nil
}

// urlSet collects the announcements' URLs into a set (anchor membership
// lookups for replica groups).
func urlSet(anns []discovery.Announcement) map[string]bool {
	out := make(map[string]bool, len(anns))
	for _, a := range anns {
		out[a.URL] = true
	}
	return out
}

// anchorServers picks the most specific maps covering a point to anchor a
// route endpoint: first the announcements at the finest discovery level,
// then — among ties — the servers whose total coverage area is within 4× of
// the smallest (a store's map beats a city map whose covering happens to
// include a same-level boundary cell). Coverage infos for tied servers are
// fetched concurrently (and cached, so only the first route pays).
func (c *Client) anchorServers(ctx context.Context, anns []discovery.Announcement) []discovery.Announcement {
	max := -1
	for _, a := range anns {
		if a.Level > max {
			max = a.Level
		}
	}
	var finest []discovery.Announcement
	for _, a := range anns {
		if a.Level == max {
			finest = append(finest, a)
		}
	}
	if len(finest) <= 1 {
		return finest
	}
	areas := make([]float64, len(finest))
	c.forEachServer(ctx, len(finest), func(ctx context.Context, i int) {
		areas[i] = math.Inf(1)
		if info, err := c.infoCtx(ctx, finest[i].URL); err == nil {
			areas[i] = coverageArea(info.Coverage)
		}
	})
	minArea := math.Inf(1)
	for _, a := range areas {
		if a < minArea {
			minArea = a
		}
	}
	if math.IsInf(minArea, 1) {
		return finest
	}
	var out []discovery.Announcement
	for i, a := range finest {
		if areas[i] <= 4*minArea {
			out = append(out, a)
		}
	}
	return out
}

// coverageArea sums relative cell areas (4^-level) over coverage tokens.
func coverageArea(tokens []string) float64 {
	var area float64
	for _, tok := range tokens {
		cell := s2cell.FromToken(tok)
		if !cell.IsValid() {
			continue
		}
		area += math.Pow(4, -float64(cell.Level()))
	}
	return area
}

func matrixAt(resp wire.RouteMatrixResponse, i, j int) float64 {
	if i >= len(resp.CostSeconds) || j >= len(resp.CostSeconds[i]) {
		return -1
	}
	return resp.CostSeconds[i][j]
}

// metaDijkstra finds the cheapest edge chain from src to dst.
func metaDijkstra(adj map[metaNode][]metaEdge, src, dst metaNode) ([]metaEdge, float64, error) {
	type hop struct {
		edge metaEdge
		from metaNode
	}
	dist := map[metaNode]float64{src: 0}
	prev := map[metaNode]hop{}
	done := map[metaNode]bool{}
	pq := &metaPQ{{node: src, dist: 0}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(metaPQItem)
		if done[it.node] {
			continue
		}
		done[it.node] = true
		if it.node == dst {
			break
		}
		for _, e := range adj[it.node] {
			nd := it.dist + e.cost
			if old, ok := dist[e.to]; !ok || nd < old {
				dist[e.to] = nd
				prev[e.to] = hop{edge: e, from: it.node}
				heap.Push(pq, metaPQItem{node: e.to, dist: nd})
			}
		}
	}
	total, ok := dist[dst]
	if !ok || math.IsInf(total, 1) || !done[dst] {
		return nil, 0, fmt.Errorf("client: no stitched route exists")
	}
	var chain []metaEdge
	for n := dst; n != src; {
		h, ok := prev[n]
		if !ok {
			return nil, 0, fmt.Errorf("client: meta-path reconstruction failed")
		}
		chain = append(chain, h.edge)
		n = h.from
	}
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	return chain, total, nil
}

type metaPQItem struct {
	node metaNode
	dist float64
}

type metaPQ []metaPQItem

func (q metaPQ) Len() int            { return len(q) }
func (q metaPQ) Less(i, j int) bool  { return q[i].dist < q[j].dist }
func (q metaPQ) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *metaPQ) Push(x interface{}) { *q = append(*q, x.(metaPQItem)) }
func (q *metaPQ) Pop() interface{} {
	old := *q
	n := len(old)
	x := old[n-1]
	*q = old[:n-1]
	return x
}
