package client

import (
	"container/heap"
	"context"
	"fmt"
	"math"
	"sort"

	"openflame/internal/discovery"
	"openflame/internal/fanout"
	"openflame/internal/geo"
	"openflame/internal/s2cell"
	"openflame/internal/wire"
)

// Leg is one server's contribution to a stitched route.
type Leg struct {
	Server      string
	URL         string
	Points      []wire.RoutePoint
	CostSeconds float64
}

// StitchedRoute is a cross-server route assembled by the client (§5.2:
// "the client would collect paths from all relevant map servers, and stitch
// them together such that the final path optimizes a metric of interest").
type StitchedRoute struct {
	Legs         []Leg
	CostSeconds  float64
	LengthMeters float64
	// ServersUsed counts distinct servers contributing legs.
	ServersUsed int
}

// Points flattens the legs into one polyline.
func (r StitchedRoute) Points() []wire.RoutePoint {
	var out []wire.RoutePoint
	for _, leg := range r.Legs {
		for _, p := range leg.Points {
			if len(out) > 0 && out[len(out)-1].Position == p.Position {
				continue
			}
			out = append(out, p)
		}
	}
	return out
}

// metaNode identifies a vertex of the portal meta-graph.
type metaNode string

const (
	metaSrc metaNode = "\x00src"
	metaDst metaNode = "\x00dst"
)

// metaEdge is a priced leg candidate.
type metaEdge struct {
	to     metaNode
	cost   float64
	server string // server URL providing this leg
	// endpoint descriptors for expanding the leg later
	fromNode int64 // 0 = use fromPos
	toNode   int64 // 0 = use toPos
	fromPos  geo.LatLng
	toPos    geo.LatLng
}

// Route plans a route from one position to another across the federation:
// it discovers servers at the endpoints and along the way, prices legs
// between portals with route-matrix calls, finds the optimal composition on
// the portal meta-graph, and expands each chosen leg into its full path.
func (c *Client) Route(from, to geo.LatLng) (StitchedRoute, error) {
	return c.RouteCtx(context.Background(), from, to)
}

// RouteCtx is Route under a context. The three discovery sweeps (source,
// destination, along the way), the per-server meta-graph pricing, and the
// final leg expansions each fan out concurrently on the client's bounded
// pool; pricing failures skip the server, leg-expansion failures fail the
// route (a chosen leg is not optional).
func (c *Client) RouteCtx(ctx context.Context, from, to geo.LatLng) (StitchedRoute, error) {
	// One retry budget for the whole route: pricing, leg expansion, and
	// anchor lookups share it rather than each getting a fresh one.
	ctx = c.withRetryBudget(ctx)
	// 1. Discover the servers involved (§5.2: endpoints plus the way).
	// Endpoints anchor to the MOST SPECIFIC (finest-level) servers
	// covering them: a shelf inside a store belongs to the store's map,
	// not to the world map that merely snaps it to the nearest street.
	// These are whole discovery sweeps, not single server calls, so they
	// run on the plain pool — PerServerTimeout must not truncate them.
	var srcAnns, dstAnns, wayAnns []discovery.Announcement
	discoveries := []func(ctx context.Context){
		func(ctx context.Context) { srcAnns = c.disc.DiscoverCtx(ctx, from) },
		func(ctx context.Context) { dstAnns = c.disc.DiscoverCtx(ctx, to) },
		func(ctx context.Context) {
			wayAnns = c.disc.DiscoverAlongPathCtx(ctx, []geo.LatLng{from, to}, 200)
		},
	}
	fanout.ForEach(ctx, len(discoveries), c.MaxConcurrency, func(ctx context.Context, i int) { discoveries[i](ctx) })

	servers := map[string]*srvEntry{}
	getOrAdd := func(url, name string) *srvEntry {
		if s, ok := servers[url]; ok {
			return s
		}
		s := &srvEntry{url: url, name: name}
		servers[url] = s
		return s
	}
	for _, a := range c.anchorServers(ctx, srcAnns) {
		getOrAdd(a.URL, a.Name).src = true
	}
	for _, a := range c.anchorServers(ctx, dstAnns) {
		getOrAdd(a.URL, a.Name).dst = true
	}
	for _, a := range srcAnns {
		getOrAdd(a.URL, a.Name)
	}
	for _, a := range dstAnns {
		getOrAdd(a.URL, a.Name)
	}
	for _, a := range wayAnns {
		getOrAdd(a.URL, a.Name)
	}
	if len(servers) == 0 {
		return StitchedRoute{}, fmt.Errorf("client: no map servers discovered for route")
	}

	// 2. Build the meta-graph: price legs via one route-matrix call per
	// server, all servers in parallel. Endpoints per server: SRC (if
	// covering from), DST (if covering to), and the server's portals. The
	// per-server edge lists land in indexed slots and merge in sorted-URL
	// order so the adjacency (and therefore tie-breaks in the meta-graph
	// search) is deterministic regardless of completion order.
	// Members whose circuit breaker is open are excluded before pricing —
	// they would only waste a matrix call. Legs are never priced on (and
	// so never chosen from) a known-down server.
	urls := make([]string, 0, len(servers))
	for url := range servers {
		if c.available(url) {
			urls = append(urls, url)
		}
	}
	sort.Strings(urls)
	type pricedServer struct {
		edges map[metaNode][]metaEdge
	}
	priced := make([]pricedServer, len(urls))
	c.forEachServer(ctx, len(urls), func(ctx context.Context, idx int) {
		url := urls[idx]
		s := servers[url]
		info, err := c.InfoCtx(ctx, url)
		if err != nil {
			return
		}
		type endpoint struct {
			node metaNode
			id   int64
			pos  geo.LatLng
		}
		var eps []endpoint
		if s.src {
			eps = append(eps, endpoint{node: metaSrc, pos: from})
		}
		if s.dst {
			eps = append(eps, endpoint{node: metaDst, pos: to})
		}
		for _, p := range info.Portals {
			eps = append(eps, endpoint{node: metaNode(p.ID), id: p.NodeID, pos: p.World})
		}
		if len(eps) < 2 {
			return
		}
		req := wire.RouteMatrixRequest{
			FromNodes:     make([]int64, len(eps)),
			ToNodes:       make([]int64, len(eps)),
			FromPositions: make([]geo.LatLng, len(eps)),
			ToPositions:   make([]geo.LatLng, len(eps)),
		}
		for i, ep := range eps {
			req.FromNodes[i] = ep.id
			req.ToNodes[i] = ep.id
			req.FromPositions[i] = ep.pos
			req.ToPositions[i] = ep.pos
		}
		var resp wire.RouteMatrixResponse
		if err := c.call(ctx, url, "/routematrix", req, &resp); err != nil {
			return
		}
		edges := map[metaNode][]metaEdge{}
		for i := range eps {
			for j := range eps {
				if i == j || eps[i].node == eps[j].node {
					continue
				}
				// Never route *into* SRC or *out of* DST.
				if eps[j].node == metaSrc || eps[i].node == metaDst {
					continue
				}
				cost := matrixAt(resp, i, j)
				if cost < 0 {
					continue
				}
				edges[eps[i].node] = append(edges[eps[i].node], metaEdge{
					to: eps[j].node, cost: cost, server: url,
					fromNode: eps[i].id, toNode: eps[j].id,
					fromPos: eps[i].pos, toPos: eps[j].pos,
				})
			}
		}
		priced[idx] = pricedServer{edges: edges}
	})
	adj := map[metaNode][]metaEdge{}
	for _, p := range priced {
		for from, edges := range p.edges {
			adj[from] = append(adj[from], edges...)
		}
	}

	// 3. Shortest path SRC→DST on the meta-graph.
	chain, total, err := metaDijkstra(adj, metaSrc, metaDst)
	if err != nil {
		return StitchedRoute{}, err
	}

	// 4. Expand every chosen leg with a full /route call on its server,
	// reassembled in chain order. With batching on, the legs are grouped
	// by server and each group answered in one /v1/batch round trip (a
	// route crossing a server several times pays one round trip, not one
	// per leg); without it — or on servers lacking the endpoint — every
	// leg is its own call, all in parallel.
	legs := make([]Leg, len(chain))
	lengths := make([]float64, len(chain))
	legErrs := make([]error, len(chain))
	expanded := make([]bool, len(chain))
	expandOne := func(ctx context.Context, i int) {
		e := chain[i]
		var resp wire.RouteResponse
		req := wire.RouteRequest{
			FromNode: e.fromNode, ToNode: e.toNode,
			From: e.fromPos, To: e.toPos,
		}
		if err := c.call(ctx, e.server, "/route", req, &resp); err != nil {
			legErrs[i] = fmt.Errorf("client: leg expansion on %s failed: %v", e.server, err)
			return
		}
		if !resp.Found {
			legErrs[i] = fmt.Errorf("client: leg expansion on %s failed: no route found", e.server)
			return
		}
		name := e.server
		if info, err := c.InfoCtx(ctx, e.server); err == nil {
			name = info.Name
		}
		legs[i] = Leg{
			Server: name, URL: e.server, Points: resp.Points, CostSeconds: resp.CostSeconds,
		}
		lengths[i] = resp.LengthMeters
		expanded[i] = true
	}
	if c.UseBatch {
		// Groups run on the plain pool (not forEachServer) so the batch
		// attempt and each fallback leg get their OWN per-server timeout:
		// a batch that burned its window must not leave the per-leg
		// fallback with an expired context. A single shared semaphore
		// bounds every HTTP call — batch or individual leg — at the
		// client's concurrency limit, so nested fan-out cannot multiply
		// the documented worker bound.
		groups := groupLegsByServer(chain)
		limit := c.MaxConcurrency
		if limit <= 0 {
			limit = fanout.DefaultLimit
		}
		sem := make(chan struct{}, limit)
		acquire := func(ctx context.Context) bool {
			select {
			case sem <- struct{}{}:
				return true
			case <-ctx.Done():
				return false
			}
		}
		fanout.ForEach(ctx, len(groups), limit, func(ctx context.Context, gi int) {
			idxs := groups[gi]
			if len(idxs) > 1 {
				if !acquire(ctx) {
					return
				}
				bctx, cancel := c.perServerCtx(ctx)
				ok := c.expandLegsBatch(bctx, chain, idxs, legs, lengths, legErrs, expanded)
				cancel()
				<-sem
				if ok {
					return
				}
			}
			// Batch declined (single leg, or the server lacks the
			// endpoint): expand the group's legs in parallel, exactly the
			// per-call fan-out — never serialize them.
			fanout.ForEach(ctx, len(idxs), limit, func(ctx context.Context, k int) {
				if !acquire(ctx) {
					return
				}
				defer func() { <-sem }()
				lctx, cancel := c.perServerCtx(ctx)
				defer cancel()
				expandOne(lctx, idxs[k])
			})
		})
	} else {
		c.forEachServer(ctx, len(chain), expandOne)
	}
	route := StitchedRoute{CostSeconds: total}
	used := map[string]bool{}
	for i, e := range chain {
		if legErrs[i] != nil {
			return StitchedRoute{}, legErrs[i]
		}
		if !expanded[i] {
			// Cancelled before the leg ran.
			return StitchedRoute{}, fmt.Errorf("client: leg expansion on %s aborted: %v", e.server, ctx.Err())
		}
		route.Legs = append(route.Legs, legs[i])
		route.LengthMeters += lengths[i]
		used[e.server] = true
	}
	route.ServersUsed = len(used)
	return route, nil
}

// srvEntry tracks one discovered server's role for the current route.
type srvEntry struct {
	url  string
	name string
	src  bool
	dst  bool
}

// anchorServers picks the most specific maps covering a point to anchor a
// route endpoint: first the announcements at the finest discovery level,
// then — among ties — the servers whose total coverage area is within 4× of
// the smallest (a store's map beats a city map whose covering happens to
// include a same-level boundary cell). Coverage infos for tied servers are
// fetched concurrently (and cached, so only the first route pays).
func (c *Client) anchorServers(ctx context.Context, anns []discovery.Announcement) []discovery.Announcement {
	max := -1
	for _, a := range anns {
		if a.Level > max {
			max = a.Level
		}
	}
	var finest []discovery.Announcement
	for _, a := range anns {
		if a.Level == max {
			finest = append(finest, a)
		}
	}
	if len(finest) <= 1 {
		return finest
	}
	areas := make([]float64, len(finest))
	c.forEachServer(ctx, len(finest), func(ctx context.Context, i int) {
		areas[i] = math.Inf(1)
		if info, err := c.InfoCtx(ctx, finest[i].URL); err == nil {
			areas[i] = coverageArea(info.Coverage)
		}
	})
	minArea := math.Inf(1)
	for _, a := range areas {
		if a < minArea {
			minArea = a
		}
	}
	if math.IsInf(minArea, 1) {
		return finest
	}
	var out []discovery.Announcement
	for i, a := range finest {
		if areas[i] <= 4*minArea {
			out = append(out, a)
		}
	}
	return out
}

// coverageArea sums relative cell areas (4^-level) over coverage tokens.
func coverageArea(tokens []string) float64 {
	var area float64
	for _, tok := range tokens {
		cell := s2cell.FromToken(tok)
		if !cell.IsValid() {
			continue
		}
		area += math.Pow(4, -float64(cell.Level()))
	}
	return area
}

func matrixAt(resp wire.RouteMatrixResponse, i, j int) float64 {
	if i >= len(resp.CostSeconds) || j >= len(resp.CostSeconds[i]) {
		return -1
	}
	return resp.CostSeconds[i][j]
}

// metaDijkstra finds the cheapest edge chain from src to dst.
func metaDijkstra(adj map[metaNode][]metaEdge, src, dst metaNode) ([]metaEdge, float64, error) {
	type hop struct {
		edge metaEdge
		from metaNode
	}
	dist := map[metaNode]float64{src: 0}
	prev := map[metaNode]hop{}
	done := map[metaNode]bool{}
	pq := &metaPQ{{node: src, dist: 0}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(metaPQItem)
		if done[it.node] {
			continue
		}
		done[it.node] = true
		if it.node == dst {
			break
		}
		for _, e := range adj[it.node] {
			nd := it.dist + e.cost
			if old, ok := dist[e.to]; !ok || nd < old {
				dist[e.to] = nd
				prev[e.to] = hop{edge: e, from: it.node}
				heap.Push(pq, metaPQItem{node: e.to, dist: nd})
			}
		}
	}
	total, ok := dist[dst]
	if !ok || math.IsInf(total, 1) || !done[dst] {
		return nil, 0, fmt.Errorf("client: no stitched route exists")
	}
	var chain []metaEdge
	for n := dst; n != src; {
		h, ok := prev[n]
		if !ok {
			return nil, 0, fmt.Errorf("client: meta-path reconstruction failed")
		}
		chain = append(chain, h.edge)
		n = h.from
	}
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	return chain, total, nil
}

type metaPQItem struct {
	node metaNode
	dist float64
}

type metaPQ []metaPQItem

func (q metaPQ) Len() int            { return len(q) }
func (q metaPQ) Less(i, j int) bool  { return q[i].dist < q[j].dist }
func (q metaPQ) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *metaPQ) Push(x interface{}) { *q = append(*q, x.(metaPQItem)) }
func (q *metaPQ) Pop() interface{} {
	old := *q
	n := len(old)
	x := old[n-1]
	*q = old[:n-1]
	return x
}
