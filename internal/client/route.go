package client

import (
	"container/heap"
	"fmt"
	"math"

	"openflame/internal/discovery"
	"openflame/internal/geo"
	"openflame/internal/s2cell"
	"openflame/internal/wire"
)

// Leg is one server's contribution to a stitched route.
type Leg struct {
	Server      string
	URL         string
	Points      []wire.RoutePoint
	CostSeconds float64
}

// StitchedRoute is a cross-server route assembled by the client (§5.2:
// "the client would collect paths from all relevant map servers, and stitch
// them together such that the final path optimizes a metric of interest").
type StitchedRoute struct {
	Legs         []Leg
	CostSeconds  float64
	LengthMeters float64
	// ServersUsed counts distinct servers contributing legs.
	ServersUsed int
}

// Points flattens the legs into one polyline.
func (r StitchedRoute) Points() []wire.RoutePoint {
	var out []wire.RoutePoint
	for _, leg := range r.Legs {
		for _, p := range leg.Points {
			if len(out) > 0 && out[len(out)-1].Position == p.Position {
				continue
			}
			out = append(out, p)
		}
	}
	return out
}

// metaNode identifies a vertex of the portal meta-graph.
type metaNode string

const (
	metaSrc metaNode = "\x00src"
	metaDst metaNode = "\x00dst"
)

// metaEdge is a priced leg candidate.
type metaEdge struct {
	to     metaNode
	cost   float64
	server string // server URL providing this leg
	// endpoint descriptors for expanding the leg later
	fromNode int64 // 0 = use fromPos
	toNode   int64 // 0 = use toPos
	fromPos  geo.LatLng
	toPos    geo.LatLng
}

// Route plans a route from one position to another across the federation:
// it discovers servers at the endpoints and along the way, prices legs
// between portals with route-matrix calls, finds the optimal composition on
// the portal meta-graph, and expands each chosen leg into its full path.
func (c *Client) Route(from, to geo.LatLng) (StitchedRoute, error) {
	// 1. Discover the servers involved (§5.2: endpoints plus the way).
	// Endpoints anchor to the MOST SPECIFIC (finest-level) servers
	// covering them: a shelf inside a store belongs to the store's map,
	// not to the world map that merely snaps it to the nearest street.
	servers := map[string]*srvEntry{}
	getOrAdd := func(url, name string) *srvEntry {
		if s, ok := servers[url]; ok {
			return s
		}
		s := &srvEntry{url: url, name: name}
		servers[url] = s
		return s
	}
	srcAnns := c.disc.Discover(from)
	dstAnns := c.disc.Discover(to)
	for _, a := range c.anchorServers(srcAnns) {
		getOrAdd(a.URL, a.Name).src = true
	}
	for _, a := range c.anchorServers(dstAnns) {
		getOrAdd(a.URL, a.Name).dst = true
	}
	for _, a := range srcAnns {
		getOrAdd(a.URL, a.Name)
	}
	for _, a := range dstAnns {
		getOrAdd(a.URL, a.Name)
	}
	for _, a := range c.disc.DiscoverAlongPath([]geo.LatLng{from, to}, 200) {
		getOrAdd(a.URL, a.Name)
	}
	if len(servers) == 0 {
		return StitchedRoute{}, fmt.Errorf("client: no map servers discovered for route")
	}

	// 2. Build the meta-graph: price legs via one route-matrix call per
	// server. Endpoints per server: SRC (if covering from), DST (if
	// covering to), and the server's portals.
	adj := map[metaNode][]metaEdge{}
	addEdge := func(f metaNode, e metaEdge) { adj[f] = append(adj[f], e) }

	for url, s := range servers {
		info, err := c.Info(url)
		if err != nil {
			continue
		}
		type endpoint struct {
			node metaNode
			id   int64
			pos  geo.LatLng
		}
		var eps []endpoint
		if s.src {
			eps = append(eps, endpoint{node: metaSrc, pos: from})
		}
		if s.dst {
			eps = append(eps, endpoint{node: metaDst, pos: to})
		}
		for _, p := range info.Portals {
			eps = append(eps, endpoint{node: metaNode(p.ID), id: p.NodeID, pos: p.World})
		}
		if len(eps) < 2 {
			continue
		}
		req := wire.RouteMatrixRequest{
			FromNodes:     make([]int64, len(eps)),
			ToNodes:       make([]int64, len(eps)),
			FromPositions: make([]geo.LatLng, len(eps)),
			ToPositions:   make([]geo.LatLng, len(eps)),
		}
		for i, ep := range eps {
			req.FromNodes[i] = ep.id
			req.ToNodes[i] = ep.id
			req.FromPositions[i] = ep.pos
			req.ToPositions[i] = ep.pos
		}
		var resp wire.RouteMatrixResponse
		if err := c.call(url, "/routematrix", req, &resp); err != nil {
			continue
		}
		for i := range eps {
			for j := range eps {
				if i == j || eps[i].node == eps[j].node {
					continue
				}
				// Never route *into* SRC or *out of* DST.
				if eps[j].node == metaSrc || eps[i].node == metaDst {
					continue
				}
				cost := matrixAt(resp, i, j)
				if cost < 0 {
					continue
				}
				addEdge(eps[i].node, metaEdge{
					to: eps[j].node, cost: cost, server: url,
					fromNode: eps[i].id, toNode: eps[j].id,
					fromPos: eps[i].pos, toPos: eps[j].pos,
				})
			}
		}
	}

	// 3. Shortest path SRC→DST on the meta-graph.
	chain, total, err := metaDijkstra(adj, metaSrc, metaDst)
	if err != nil {
		return StitchedRoute{}, err
	}

	// 4. Expand each chosen leg with a full /route call on its server.
	route := StitchedRoute{CostSeconds: total}
	used := map[string]bool{}
	for _, e := range chain {
		var resp wire.RouteResponse
		req := wire.RouteRequest{
			FromNode: e.fromNode, ToNode: e.toNode,
			From: e.fromPos, To: e.toPos,
		}
		if err := c.call(e.server, "/route", req, &resp); err != nil || !resp.Found {
			return StitchedRoute{}, fmt.Errorf("client: leg expansion on %s failed: %v", e.server, err)
		}
		name := e.server
		if info, err := c.Info(e.server); err == nil {
			name = info.Name
		}
		route.Legs = append(route.Legs, Leg{
			Server: name, URL: e.server, Points: resp.Points, CostSeconds: resp.CostSeconds,
		})
		route.LengthMeters += resp.LengthMeters
		used[e.server] = true
	}
	route.ServersUsed = len(used)
	return route, nil
}

// srvEntry tracks one discovered server's role for the current route.
type srvEntry struct {
	url  string
	name string
	src  bool
	dst  bool
}

// anchorServers picks the most specific maps covering a point to anchor a
// route endpoint: first the announcements at the finest discovery level,
// then — among ties — the servers whose total coverage area is within 4× of
// the smallest (a store's map beats a city map whose covering happens to
// include a same-level boundary cell).
func (c *Client) anchorServers(anns []discovery.Announcement) []discovery.Announcement {
	max := -1
	for _, a := range anns {
		if a.Level > max {
			max = a.Level
		}
	}
	var finest []discovery.Announcement
	for _, a := range anns {
		if a.Level == max {
			finest = append(finest, a)
		}
	}
	if len(finest) <= 1 {
		return finest
	}
	areas := make([]float64, len(finest))
	minArea := math.Inf(1)
	for i, a := range finest {
		areas[i] = math.Inf(1)
		if info, err := c.Info(a.URL); err == nil {
			areas[i] = coverageArea(info.Coverage)
		}
		if areas[i] < minArea {
			minArea = areas[i]
		}
	}
	if math.IsInf(minArea, 1) {
		return finest
	}
	var out []discovery.Announcement
	for i, a := range finest {
		if areas[i] <= 4*minArea {
			out = append(out, a)
		}
	}
	return out
}

// coverageArea sums relative cell areas (4^-level) over coverage tokens.
func coverageArea(tokens []string) float64 {
	var area float64
	for _, tok := range tokens {
		cell := s2cell.FromToken(tok)
		if !cell.IsValid() {
			continue
		}
		area += math.Pow(4, -float64(cell.Level()))
	}
	return area
}

func matrixAt(resp wire.RouteMatrixResponse, i, j int) float64 {
	if i >= len(resp.CostSeconds) || j >= len(resp.CostSeconds[i]) {
		return -1
	}
	return resp.CostSeconds[i][j]
}

// metaDijkstra finds the cheapest edge chain from src to dst.
func metaDijkstra(adj map[metaNode][]metaEdge, src, dst metaNode) ([]metaEdge, float64, error) {
	type hop struct {
		edge metaEdge
		from metaNode
	}
	dist := map[metaNode]float64{src: 0}
	prev := map[metaNode]hop{}
	done := map[metaNode]bool{}
	pq := &metaPQ{{node: src, dist: 0}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(metaPQItem)
		if done[it.node] {
			continue
		}
		done[it.node] = true
		if it.node == dst {
			break
		}
		for _, e := range adj[it.node] {
			nd := it.dist + e.cost
			if old, ok := dist[e.to]; !ok || nd < old {
				dist[e.to] = nd
				prev[e.to] = hop{edge: e, from: it.node}
				heap.Push(pq, metaPQItem{node: e.to, dist: nd})
			}
		}
	}
	total, ok := dist[dst]
	if !ok || math.IsInf(total, 1) || !done[dst] {
		return nil, 0, fmt.Errorf("client: no stitched route exists")
	}
	var chain []metaEdge
	for n := dst; n != src; {
		h, ok := prev[n]
		if !ok {
			return nil, 0, fmt.Errorf("client: meta-path reconstruction failed")
		}
		chain = append(chain, h.edge)
		n = h.from
	}
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	return chain, total, nil
}

type metaPQItem struct {
	node metaNode
	dist float64
}

type metaPQ []metaPQItem

func (q metaPQ) Len() int            { return len(q) }
func (q metaPQ) Less(i, j int) bool  { return q[i].dist < q[j].dist }
func (q metaPQ) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *metaPQ) Push(x interface{}) { *q = append(*q, x.(metaPQItem)) }
func (q *metaPQ) Pop() interface{} {
	old := *q
	n := len(old)
	x := old[n-1]
	*q = old[:n-1]
	return x
}
