package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"openflame/internal/discovery"
	"openflame/internal/geo"
	"openflame/internal/resilience"
	"openflame/internal/s2cell"
	"openflame/internal/search"
	"openflame/internal/watch"
	"openflame/internal/wire"
)

// WatchEvent is one application-visible event on a watch stream.
//
// The per-group contract is: the FIRST event for a group is an init carrying
// the full result set; every later event is a delta carrying only net
// changes — regardless of how many times the underlying stream reconnected,
// failed over to a sibling, or re-snapshotted after an origin restart. The
// client absorbs every server-side re-init by diffing it against its
// materialized state, so the application never sees a duplicated result or
// a phantom removal.
type WatchEvent struct {
	// Group is the plan-group key the event belongs to; Server names the
	// replica that produced it.
	Group  string
	Server string
	// Init marks the group's first event (full snapshot in Results);
	// otherwise Updated/Removed carry the net delta.
	Init    bool
	Results []search.Result
	Updated []search.Result
	Removed []int64
	// Mark is the serving replica's session mark as of the event, when the
	// server supplied one.
	Mark *wire.SessionMark
}

// Watch is a live subscription returned by WatchV2. Consume Events until it
// closes; call Stop to end the subscription.
type Watch struct {
	events chan WatchEvent
	cancel context.CancelFunc
	wg     sync.WaitGroup
}

// Events returns the merged event stream across all watched replica groups.
// The channel closes after Stop (or cancellation of the WatchV2 context).
func (w *Watch) Events() <-chan WatchEvent { return w.events }

// Stop cancels the subscription and waits for its workers; Events closes.
func (w *Watch) Stop() {
	w.cancel()
	w.wg.Wait()
}

// watchBackoff bounds the reconnect backoff after a full failover round in
// which no replica of the group produced an event.
const (
	watchBackoffInitial = 50 * time.Millisecond
	watchBackoffMax     = 2 * time.Second
)

// maxWatchFrame bounds one SSE frame on the wire (a full init snapshot of a
// large region is the worst case).
const maxWatchFrame = 8 << 20

// WatchV2 subscribes to a standing query: like SearchV2 it plans the
// discovered servers into replica groups, but instead of asking once it
// opens one push stream per group and keeps it alive — an initial result
// set, then deltas as the region churns.
//
// Each group's stream fails over to a sibling on error, resuming from its
// (log, seq) cursor; a resumption the server cannot vouch for — a restarted
// origin's dead log id, a cursor compacted away — yields a fresh server
// snapshot that the client diffs against its materialized state, so the
// application-visible stream stays gap-free and duplicate-free through any
// reconnect. An overloaded hub's 429 is honored as a backoff floor
// (Retry-After) and never counts against the replica's circuit breaker:
// watch subscriptions live entirely outside the resilience tracker, whose
// failure accounting is calibrated for request/response traffic.
//
// WithMaxServers bounds how many groups are watched;
// WithConsistency/WithSession gate each subscription on the session's marks
// like any sessioned read, and marks carried by events feed back into the
// session.
func (c *Client) WatchV2(ctx context.Context, query string, near geo.LatLng, limit int, opts ...CallOption) (*Watch, error) {
	ctx = c.withCallOpts(ctx, opts)
	region := s2cell.CapRegion{Cap: geo.Cap{Center: near, RadiusMeters: c.SearchRadiusMeters}}
	anns := c.availableAnns(c.disc.DiscoverRegionCtx(ctx, region))
	groups := planAnnouncements(anns)
	if o := callOptsFrom(ctx); o.maxServers > 0 && len(groups) > o.maxServers {
		groups = groups[:o.maxServers]
	}
	if len(groups) == 0 {
		return nil, fmt.Errorf("client: no servers discovered to watch near %v", near)
	}
	wctx, cancel := context.WithCancel(ctx)
	w := &Watch{events: make(chan WatchEvent, 64), cancel: cancel}
	req := wire.SearchRequest{
		Query: query, Near: &near,
		MaxDistanceMeters: c.SearchRadiusMeters, Limit: limit,
	}
	for _, g := range groups {
		w.wg.Add(1)
		go func(g planGroup) {
			defer w.wg.Done()
			c.watchGroup(wctx, g, req, w)
		}(g)
	}
	go func() {
		w.wg.Wait()
		close(w.events)
	}()
	return w, nil
}

// watchState is one group's client-side view of its stream: the resume
// cursor and the materialized result set every incoming frame is reconciled
// against.
type watchState struct {
	log, seq uint64
	results  map[int64]search.Result
	inited   bool // the application has received this group's init
}

// watchGroup runs one group's subscription until the watch is stopped:
// stream from the preferred replica, fail over across siblings on error,
// back off only after a full round with no progress.
func (c *Client) watchGroup(ctx context.Context, g planGroup, query wire.SearchRequest, w *Watch) {
	st := &watchState{}
	backoff := watchBackoffInitial
	for ctx.Err() == nil {
		progressed := false
		floor := time.Duration(0)
		for _, a := range c.orderedReplicas(g) {
			if ctx.Err() != nil {
				return
			}
			prog, err := c.watchStream(ctx, g, a, query, st, w)
			if prog {
				progressed = true
				backoff = watchBackoffInitial
			}
			if err == nil {
				continue // stream ended cleanly (cancellation); loop re-checks ctx
			}
			var he *resilience.HTTPError
			if errors.As(err, &he) {
				switch he.StatusCode {
				case wire.StatusStaleReplica:
					// This replica cannot vouch for the session's marks; a
					// refusal carrying the refuser's mark may reveal a dead
					// log incarnation to heal. Siblings may still serve.
					if sess := sessionFrom(ctx); sess != nil && he.Session != nil {
						sess.healRestartedOrigin(g.Key, *he.Session)
					}
				case wire.StatusOverloaded:
					// ClassOverload: the hub's watcher bound is reached. The
					// Retry-After hint floors the backoff; the breaker never
					// hears about it (watch runs outside the tracker).
					if he.RetryAfter > floor {
						floor = he.RetryAfter
					}
				}
			}
		}
		if ctx.Err() != nil {
			return
		}
		sleep := backoff
		if !progressed {
			backoff *= 2
			if backoff > watchBackoffMax {
				backoff = watchBackoffMax
			}
		}
		if floor > sleep {
			sleep = floor
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(sleep):
		}
	}
}

// watchStream opens one subscription to one replica and pumps its events
// until the stream breaks. It reports whether any event was applied (the
// failover loop's progress signal) and the terminal error. Non-200
// responses surface as *resilience.HTTPError for classification, exactly
// like post — but the attempt deliberately bypasses resilience.Do and the
// per-server timeout: a healthy stream is supposed to live for minutes, and
// its eventual death is a reconnect, not a server failure to account.
func (c *Client) watchStream(ctx context.Context, g planGroup, a discovery.Announcement, query wire.SearchRequest, st *watchState, w *Watch) (progressed bool, err error) {
	sub := wire.SubscribeRequest{Query: query, Log: st.log, Seq: st.seq}
	if rc := consistencyFor(ctx, g.Key); rc != nil {
		sub.Query.SetConsistency(rc)
	}
	body, err := json.Marshal(&sub)
	if err != nil {
		return false, err
	}
	c.requests.Add(1)
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, a.URL+"/v1/watch", bytes.NewReader(body))
	if err != nil {
		return false, err
	}
	httpReq.Header.Set("Content-Type", "application/json")
	httpReq.Header.Set("Accept", "text/event-stream")
	if c.User != "" {
		httpReq.Header.Set("X-Flame-User", c.User)
	}
	if c.App != "" {
		httpReq.Header.Set("X-Flame-App", c.App)
	}
	res, err := c.http.Do(httpReq)
	if err != nil {
		return false, err
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		var e wire.ErrorResponse
		_ = json.NewDecoder(res.Body).Decode(&e)
		return false, &resilience.HTTPError{
			URL: a.URL + "/v1/watch", StatusCode: res.StatusCode,
			Msg: e.Error, Session: e.Session,
			RetryAfter: retryAfterHint(res, e),
		}
	}
	sc := bufio.NewScanner(res.Body)
	sc.Buffer(make([]byte, 0, 64<<10), maxWatchFrame)
	var data []byte
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			// Frame boundary: dispatch the accumulated payload.
			if len(data) > 0 {
				var ev wire.Event
				if err := json.Unmarshal(data, &ev); err != nil {
					return progressed, fmt.Errorf("client: bad watch frame from %s: %w", a.URL, err)
				}
				data = data[:0]
				if c.applyWatchEvent(ctx, g, a, st, ev, w) {
					progressed = true
				}
			}
			continue
		}
		if rest, ok := bytes.CutPrefix(line, []byte("data:")); ok {
			// Multi-line data fields join with \n per the SSE spec.
			if len(data) > 0 {
				data = append(data, '\n')
			}
			data = append(data, bytes.TrimPrefix(rest, []byte(" "))...)
		}
		// Other SSE fields (comments, ids) are ignored.
	}
	if err := sc.Err(); err != nil {
		return progressed, err
	}
	// EOF: the server ended the stream (shutdown, or the hub dropped a slow
	// subscriber). Treat as a reconnectable break.
	return progressed, io.ErrUnexpectedEOF
}

// applyWatchEvent reconciles one server frame against the group's
// materialized state and forwards the net effect to the application. It
// returns whether the frame counted as stream progress.
//
// Reconciliation is what makes failover invisible: a sibling (or restarted
// origin) that cannot honor our cursor sends a fresh init; diffing it
// against the materialized map yields exactly the changes missed during the
// gap — nothing the application already holds is re-announced, nothing is
// silently skipped.
func (c *Client) applyWatchEvent(ctx context.Context, g planGroup, a discovery.Announcement, st *watchState, ev wire.Event, w *Watch) bool {
	if ev.Session != nil {
		if sess := sessionFrom(ctx); sess != nil {
			sess.observe(g.Key, *ev.Session)
		}
	}
	switch ev.Type {
	case wire.EventPing:
		// Keepalive: proof of a healthy stream, no state change.
		return true
	case wire.EventSync:
		// The server vouches that our materialized state is current through
		// the new cursor.
		st.log, st.seq = ev.Log, ev.Seq
		return true
	case wire.EventInit:
		st.log, st.seq = ev.Log, ev.Seq
		fresh := watch.Materialize(ev.Results)
		if !st.inited {
			st.results = fresh
			st.inited = true
			c.deliverWatch(ctx, w, WatchEvent{
				Group: g.Key, Server: a.Name, Init: true,
				Results: ev.Results, Mark: ev.Session,
			})
			return true
		}
		updated, removed := watch.Diff(st.results, ev.Results)
		st.results = fresh
		if len(updated) == 0 && len(removed) == 0 {
			return true
		}
		c.deliverWatch(ctx, w, WatchEvent{
			Group: g.Key, Server: a.Name,
			Updated: updated, Removed: removed, Mark: ev.Session,
		})
		return true
	case wire.EventDelta:
		st.log, st.seq = ev.Log, ev.Seq
		if st.results == nil {
			st.results = make(map[int64]search.Result)
		}
		// Dedup against materialized state: a replayed delta (reconnect
		// races) must not re-announce what the application already has.
		var updated []search.Result
		for _, r := range ev.Updated {
			id := int64(r.NodeID)
			if cur, ok := st.results[id]; ok && watch.ResultEqual(cur, r) {
				continue
			}
			st.results[id] = r
			updated = append(updated, r)
		}
		var removed []int64
		for _, id := range ev.Removed {
			if _, ok := st.results[id]; !ok {
				continue
			}
			delete(st.results, id)
			removed = append(removed, id)
		}
		if len(updated) == 0 && len(removed) == 0 {
			return true
		}
		c.deliverWatch(ctx, w, WatchEvent{
			Group: g.Key, Server: a.Name,
			Updated: updated, Removed: removed, Mark: ev.Session,
		})
		return true
	}
	return false
}

// deliverWatch hands one event to the application, yielding to cancellation
// if the consumer has stopped draining.
func (c *Client) deliverWatch(ctx context.Context, w *Watch, ev WatchEvent) {
	select {
	case w.events <- ev:
	case <-ctx.Done():
	}
}
