package client

// The v1 API surface: Foo/FooCtx/FooFanout/FooFanoutCtx wrapper triplets
// kept for source compatibility, each a thin deprecated delegate to its v2
// core with default options. They are pinned byte-identical to the v2
// calls by TestLegacyWrappersMatchV2; nothing inside this repository
// (internal/, cmd/, examples/) may call them — the Makefile's
// deprecation-guard target fails CI on any non-test call site outside this
// file.

import (
	"context"

	"openflame/internal/discovery"
	"openflame/internal/geo"
	"openflame/internal/loc"
	"openflame/internal/search"
	"openflame/internal/wire"
)

// Discover exposes raw discovery for applications.
//
// Deprecated: use DiscoverV2.
func (c *Client) Discover(ll geo.LatLng) []discovery.Announcement {
	return c.DiscoverV2(context.Background(), ll)
}

// DiscoverCtx is Discover under a context.
//
// Deprecated: use DiscoverV2.
func (c *Client) DiscoverCtx(ctx context.Context, ll geo.LatLng) []discovery.Announcement {
	return c.DiscoverV2(ctx, ll)
}

// Info fetches (and caches) a server's description.
//
// Deprecated: use InfoV2.
func (c *Client) Info(baseURL string) (wire.Info, error) {
	return c.InfoV2(context.Background(), baseURL)
}

// InfoCtx is Info under a context.
//
// Deprecated: use InfoV2.
func (c *Client) InfoCtx(ctx context.Context, baseURL string) (wire.Info, error) {
	return c.InfoV2(ctx, baseURL)
}

// Search fans a location-based search out to every server discovered in
// the search region and merges the ranked results (§5.2).
//
// Deprecated: use SearchV2.
func (c *Client) Search(query string, near geo.LatLng, limit int) []search.Result {
	return c.SearchV2(context.Background(), query, near, limit)
}

// SearchCtx is Search under a context.
//
// Deprecated: use SearchV2.
func (c *Client) SearchCtx(ctx context.Context, query string, near geo.LatLng, limit int) []search.Result {
	return c.SearchV2(ctx, query, near, limit)
}

// SearchFanout is Search restricted to the first maxServers replica groups
// (0 = all).
//
// Deprecated: use SearchV2 with WithMaxServers.
func (c *Client) SearchFanout(query string, near geo.LatLng, limit, maxServers int) []search.Result {
	return c.SearchV2(context.Background(), query, near, limit, WithMaxServers(maxServers))
}

// SearchFanoutCtx is SearchFanout under a context.
//
// Deprecated: use SearchV2 with WithMaxServers.
func (c *Client) SearchFanoutCtx(ctx context.Context, query string, near geo.LatLng, limit, maxServers int) []search.Result {
	return c.SearchV2(ctx, query, near, limit, WithMaxServers(maxServers))
}

// Geocode resolves a hierarchical address (§5.2).
//
// Deprecated: use GeocodeV2.
func (c *Client) Geocode(address string) (wire.GeocodeResult, error) {
	return c.GeocodeV2(context.Background(), address)
}

// GeocodeCtx is Geocode under a context.
//
// Deprecated: use GeocodeV2.
func (c *Client) GeocodeCtx(ctx context.Context, address string) (wire.GeocodeResult, error) {
	return c.GeocodeV2(ctx, address)
}

// ReverseGeocode asks every discovered server and returns the closest
// addressable hit.
//
// Deprecated: use ReverseGeocodeV2.
func (c *Client) ReverseGeocode(ll geo.LatLng, maxMeters float64) (wire.GeocodeResult, bool) {
	return c.ReverseGeocodeV2(context.Background(), ll, maxMeters)
}

// ReverseGeocodeCtx is ReverseGeocode under a context.
//
// Deprecated: use ReverseGeocodeV2.
func (c *Client) ReverseGeocodeCtx(ctx context.Context, ll geo.LatLng, maxMeters float64) (wire.GeocodeResult, bool) {
	return c.ReverseGeocodeV2(ctx, ll, maxMeters)
}

// Localize sends the cues to every discovered server advertising a
// matching technology and picks the most plausible fix (§5.2).
//
// Deprecated: use LocalizeV2.
func (c *Client) Localize(coarse geo.LatLng, cues []loc.Cue, prior geo.LatLng, priorSigmaMeters float64) (loc.Fix, bool) {
	return c.LocalizeV2(context.Background(), coarse, cues, prior, priorSigmaMeters)
}

// LocalizeCtx is Localize under a context.
//
// Deprecated: use LocalizeV2.
func (c *Client) LocalizeCtx(ctx context.Context, coarse geo.LatLng, cues []loc.Cue, prior geo.LatLng, priorSigmaMeters float64) (loc.Fix, bool) {
	return c.LocalizeV2(ctx, coarse, cues, prior, priorSigmaMeters)
}

// Route plans a route from one position to another across the federation.
//
// Deprecated: use RouteV2.
func (c *Client) Route(from, to geo.LatLng) (StitchedRoute, error) {
	return c.RouteV2(context.Background(), from, to)
}

// RouteCtx is Route under a context.
//
// Deprecated: use RouteV2.
func (c *Client) RouteCtx(ctx context.Context, from, to geo.LatLng) (StitchedRoute, error) {
	return c.RouteV2(ctx, from, to)
}

// GetTilePNG fetches one tile from a server.
//
// Deprecated: use TilePNGV2.
func (c *Client) GetTilePNG(baseURL string, z, x, y int) ([]byte, error) {
	return c.TilePNGV2(context.Background(), baseURL, z, x, y)
}

// GetTilePNGCtx is GetTilePNG under a context.
//
// Deprecated: use TilePNGV2.
func (c *Client) GetTilePNGCtx(ctx context.Context, baseURL string, z, x, y int) ([]byte, error) {
	return c.TilePNGV2(ctx, baseURL, z, x, y)
}
