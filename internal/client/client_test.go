package client_test

import (
	"math/rand"
	"strings"
	"testing"

	"openflame/internal/client"
	"openflame/internal/core"
	"openflame/internal/geo"
	"openflame/internal/loc"
	"openflame/internal/worldgen"
)

// worldFixture deploys the generated world once per test.
func worldFixture(t testing.TB) (*core.Federation, *worldgen.World, *client.Client) {
	t.Helper()
	w := worldgen.GenWorld(worldgen.DefaultWorldParams())
	f, err := core.DeployWorld(w)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Close)
	return f, w, f.NewClient()
}

func trueEntrance(s *worldgen.IndoorBundle) geo.LatLng {
	return s.Correspondences[len(s.Correspondences)-1].World
}

func TestSearchFindsProductAcrossFederation(t *testing.T) {
	_, w, c := worldFixture(t)
	store := w.Stores[0]
	product := store.Products[0]
	near := geo.Offset(trueEntrance(store), 60, 180) // on the street outside
	results := c.Search(product, near, 10)
	if len(results) == 0 {
		t.Fatalf("product %q not found near the store", product)
	}
	top := results[0]
	if !strings.Contains(top.Name, product) {
		t.Fatalf("top hit = %+v", top)
	}
	// The hit came from the store's own server, not the world map.
	if top.Source == "world-map" {
		t.Fatalf("product served by world map: %+v", top)
	}
}

func TestSearchOutdoorPOI(t *testing.T) {
	_, w, c := worldFixture(t)
	store := w.Stores[0]
	near := trueEntrance(store)
	// The store itself is a POI on the world map.
	results := c.Search(store.Map.Name, near, 10)
	if len(results) == 0 {
		t.Fatalf("store %q not found", store.Map.Name)
	}
}

func TestSearchFarFromStoresFindsNothingIndoor(t *testing.T) {
	_, w, c := worldFixture(t)
	product := w.Stores[0].Products[0]
	// A corner of the city with no store nearby.
	far := geo.LatLng{Lat: 40.4400, Lng: -79.9990}
	for _, r := range c.Search(product, far, 10) {
		if r.Source != "world-map" && r.DistanceMeters < 100 {
			t.Fatalf("unexpected nearby indoor hit: %+v", r)
		}
	}
}

func TestGeocodeHierarchicalAddress(t *testing.T) {
	_, w, c := worldFixture(t)
	store := w.Stores[0]
	product := store.Products[0]
	// "roasted seaweed shelf, Corner Grocery" — head resolved by the
	// store's map, tail by the world provider (§5.2).
	address := product + " shelf, " + store.Map.Name
	got, err := c.Geocode(address)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(got.Name, product) {
		t.Fatalf("geocode = %+v", got)
	}
	// The shelf's resolved position lies within ~50m of the entrance.
	if d := geo.DistanceMeters(got.Position, trueEntrance(store)); d > 50 {
		t.Fatalf("shelf position %v m from entrance", d)
	}
}

func TestGeocodeWorldFallback(t *testing.T) {
	_, _, c := worldFixture(t)
	got, err := c.Geocode("2nd Street")
	if err != nil {
		t.Fatal(err)
	}
	if got.Name == "" {
		t.Fatalf("geocode = %+v", got)
	}
	if _, err := c.Geocode(""); err == nil {
		t.Fatal("empty address accepted")
	}
	if _, err := c.Geocode("xyzzy nowhere"); err == nil {
		t.Fatal("unresolvable address succeeded")
	}
}

func TestReverseGeocode(t *testing.T) {
	_, w, c := worldFixture(t)
	store := w.Stores[0]
	got, ok := c.ReverseGeocode(trueEntrance(store), 100)
	if !ok {
		t.Fatal("reverse geocode found nothing")
	}
	if got.Name == "" {
		t.Fatalf("rgeocode = %+v", got)
	}
}

func TestLocalizeIndoorSelectsStoreFix(t *testing.T) {
	_, w, c := worldFixture(t)
	store := w.Stores[0]
	rng := rand.New(rand.NewSource(42))
	truthLocal := geo.Point{X: 5, Y: 12}
	cue := loc.SynthesizeRSSICue(truthLocal, store.Beacons, loc.DefaultRadioModel(), rng)

	// Coarse position from (bad) indoor GPS; prior is the same reading.
	gps := loc.DefaultGPSModel()
	entrance := trueEntrance(store)
	gpsCue, ok := gps.Sample(entrance, true, rng)
	if !ok {
		t.Fatal("gps denied")
	}
	fix, ok := c.Localize(*gpsCue.GPS, []loc.Cue{cue}, *gpsCue.GPS, gps.IndoorSigmaMeters)
	if !ok {
		t.Fatal("no fix")
	}
	if fix.Technology != loc.TechWiFiRSSI {
		t.Fatalf("fix technology = %v", fix.Technology)
	}
	if d := fix.Local.Dist(truthLocal); d > 8 {
		t.Fatalf("fix error %v m", d)
	}
}

func TestLocalizeNoServers(t *testing.T) {
	_, _, c := worldFixture(t)
	far := geo.LatLng{Lat: 41, Lng: -78}
	if _, ok := c.Localize(far, []loc.Cue{{Technology: loc.TechWiFiRSSI,
		RSSI: map[string]float64{"x": -50}}}, far, 10); ok {
		t.Fatal("localized with no servers")
	}
}

func TestRouteOutdoorOnly(t *testing.T) {
	_, _, c := worldFixture(t)
	from := geo.LatLng{Lat: 40.4400, Lng: -79.9990}
	to := geo.Offset(geo.Offset(from, 400, 0), 400, 90)
	route, err := c.Route(from, to)
	if err != nil {
		t.Fatal(err)
	}
	if route.ServersUsed != 1 {
		t.Fatalf("outdoor route used %d servers", route.ServersUsed)
	}
	if route.LengthMeters < 700 || route.LengthMeters > 1000 {
		t.Fatalf("length = %v m, want ~800 (manhattan)", route.LengthMeters)
	}
}

func TestRouteStreetToShelf(t *testing.T) {
	// The §2 scenario: navigate from a street corner to a specific shelf
	// inside a store; the route must cross the portal and use both maps.
	_, w, c := worldFixture(t)
	store := w.Stores[0]
	product := store.Products[len(store.Products)-1]
	shelf, err := c.Geocode(product + " shelf, " + store.Map.Name)
	if err != nil {
		t.Fatal(err)
	}
	from := geo.LatLng{Lat: 40.4400, Lng: -79.9990} // far city corner
	route, err := c.Route(from, shelf.Position)
	if err != nil {
		t.Fatal(err)
	}
	if route.ServersUsed < 2 {
		t.Fatalf("street-to-shelf route used %d servers; want outdoor+indoor", route.ServersUsed)
	}
	// The final leg is served by the store.
	last := route.Legs[len(route.Legs)-1]
	if last.Server == "world-map" {
		t.Fatalf("final leg served by %s", last.Server)
	}
	// Route passes near the entrance portal.
	entrance := trueEntrance(store)
	nearPortal := false
	for _, p := range route.Points() {
		if geo.DistanceMeters(p.Position, entrance) < 10 {
			nearPortal = true
			break
		}
	}
	if !nearPortal {
		t.Fatal("stitched route does not pass the entrance portal")
	}
	if route.CostSeconds <= 0 || route.LengthMeters <= 0 {
		t.Fatalf("route stats: %+v", route)
	}
}

func TestRouteNoServers(t *testing.T) {
	_, _, c := worldFixture(t)
	far := geo.LatLng{Lat: 10, Lng: 10}
	if _, err := c.Route(far, geo.Offset(far, 100, 0)); err == nil {
		t.Fatal("route with no servers succeeded")
	}
}

func TestTileFetchAndRequestCount(t *testing.T) {
	f, w, c := worldFixture(t)
	store := w.Stores[0]
	entrance := trueEntrance(store)
	anns := c.Discover(entrance)
	if len(anns) == 0 {
		t.Fatal("nothing discovered")
	}
	before := c.RequestCount()
	png, err := c.GetTilePNG(anns[0].URL, 17, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(png) == 0 {
		t.Fatal("empty tile")
	}
	if c.RequestCount() != before+1 {
		t.Fatalf("request count %d -> %d", before, c.RequestCount())
	}
	_ = f
}

func TestIdentityHeadersForwarded(t *testing.T) {
	// Lock a store's search behind a user domain and confirm the client's
	// identity opens it.
	w := worldgen.GenWorld(worldgen.DefaultWorldParams())
	f, err := core.DeployWorld(w)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	// DeployWorld has no auth; this test uses the mapserver policy knob
	// through a dedicated federation in the campus example instead. Here
	// we only verify headers are attached (no panic path).
	c := f.NewClient()
	c.User = "alice@cmu.edu"
	c.App = "campus-nav"
	store := w.Stores[0]
	if got := c.Search(store.Products[0], trueEntrance(store), 5); len(got) == 0 {
		t.Fatal("authenticated search failed")
	}
}

func TestSelectBestWorld(t *testing.T) {
	center := geo.LatLng{Lat: 40.44, Lng: -79.99}
	good := loc.Fix{World: center, Confidence: 0.6, SigmaMeters: 3, Source: "right"}
	outlier := loc.Fix{World: geo.Offset(center, 900, 90), Confidence: 0.95, SigmaMeters: 3, Source: "wrong"}
	got, ok := client.SelectBestWorld([]loc.Fix{outlier, good}, center, 10)
	if !ok || got.Source != "right" {
		t.Fatalf("SelectBestWorld = %+v", got)
	}
	got, _ = client.SelectBestWorld([]loc.Fix{outlier, good}, center, 0)
	if got.Source != "wrong" {
		t.Fatalf("no-prior pick = %+v", got)
	}
	if _, ok := client.SelectBestWorld(nil, center, 1); ok {
		t.Fatal("empty fixes selected")
	}
}

func TestLocalizeVisualCue(t *testing.T) {
	// Image-landmark localization (§5.2 lists images among location cues)
	// end to end through the federation.
	_, w, c := worldFixture(t)
	store := w.Stores[0]
	rng := rand.New(rand.NewSource(77))
	truth := geo.Point{X: -6, Y: 14}
	cue := loc.SynthesizeVisualCue(truth, store.Landmarks, 100, 0.05, rng)
	entrance := trueEntrance(store)
	fix, ok := c.Localize(entrance, []loc.Cue{cue}, entrance, 35)
	if !ok {
		t.Fatal("no visual fix")
	}
	if fix.Technology != loc.TechVisual {
		t.Fatalf("technology = %v", fix.Technology)
	}
	if d := fix.Local.Dist(truth); d > 4 {
		t.Fatalf("visual fix error %v m", d)
	}
}

func TestLocalizeMultiCueFusion(t *testing.T) {
	// The client sends every cue it has; the best-scoring fix wins.
	_, w, c := worldFixture(t)
	store := w.Stores[0]
	rng := rand.New(rand.NewSource(78))
	truth := geo.Point{X: 8, Y: 6}
	cues := []loc.Cue{
		loc.SynthesizeRSSICue(truth, store.Beacons, loc.DefaultRadioModel(), rng),
		loc.SynthesizeVisualCue(truth, store.Landmarks, 100, 0.03, rng),
	}
	entrance := trueEntrance(store)
	fix, ok := c.Localize(entrance, cues, entrance, 35)
	if !ok {
		t.Fatal("no fix")
	}
	if d := fix.Local.Dist(truth); d > 5 {
		t.Fatalf("fused fix error %v m (via %v)", d, fix.Technology)
	}
}
