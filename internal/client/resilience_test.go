package client_test

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"openflame/internal/core"
	"openflame/internal/geo"
	"openflame/internal/netsim"
	"openflame/internal/resilience"
	"openflame/internal/s2cell"
	"openflame/internal/wire"
)

// The resilience layer is verified end to end through deterministic
// netsim fault schedules wired between the client and map-server doubles:
// schedules advance on request count, so the Nth request always sees the
// same fault regardless of timing, and every assertion is on counters and
// results — no sleeps as synchronization.

// faultyFederation stands up n map-server doubles, each behind its own
// fault schedule (nil = healthy), all announced on the cell covering pos.
func faultyFederation(t testing.TB, schedules []*netsim.FaultSchedule) (*core.Federation, geo.LatLng, []*delayedServer, []string) {
	t.Helper()
	fed, err := core.NewFederation()
	if err != nil {
		t.Fatal(err)
	}
	pos := geo.LatLng{Lat: 40.4433, Lng: -79.9436}
	token := s2cell.FromLatLng(pos).Parent(16).Token()
	doubles := make([]*delayedServer, len(schedules))
	urls := make([]string, len(schedules))
	for i, sched := range schedules {
		d := &delayedServer{name: fmt.Sprintf("srv-%02d", i), pos: pos}
		var handler http.Handler = d
		if sched != nil {
			handler = sched.Wrap(d)
		}
		ts := httptest.NewServer(handler)
		t.Cleanup(ts.Close)
		doubles[i] = d
		urls[i] = ts.URL
		if err := fed.Registry.Register(wire.Info{
			Name: d.name, Coverage: []string{token}, Services: []wire.Service{wire.SvcSearch},
		}, ts.URL); err != nil {
			t.Fatal(err)
		}
	}
	return fed, pos, doubles, urls
}

// fakeClock drives breaker cooldowns without sleeping.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// TestRetryRecoversTransientServerError: the member 503s once, the retry
// policy re-attempts, and its result still lands in the merge.
func TestRetryRecoversTransientServerError(t *testing.T) {
	sched := netsim.FailFirst(1, 503)
	fed, pos, _, _ := faultyFederation(t, []*netsim.FaultSchedule{sched})
	c := fed.NewClient()
	c.SearchRadiusMeters = 100
	c.RetryPolicy = resilience.RetryPolicy{MaxAttempts: 2, BaseBackoff: time.Millisecond}

	results := c.Search("hit", pos, 10)
	if len(results) != 1 || results[0].Source != "srv-00" {
		t.Fatalf("retry did not recover the transient 503: %v", results)
	}
	if got := sched.Requests(); got != 2 {
		t.Fatalf("server saw %d requests, want 2 (original + retry)", got)
	}
}

// TestTransientErrorNotRetriedWithoutPolicy pins the default: no retry
// knobs, one attempt, the failed member is simply skipped (PR 1 behavior).
func TestTransientErrorNotRetriedWithoutPolicy(t *testing.T) {
	sched := netsim.FailFirst(1, 503)
	fed, pos, _, _ := faultyFederation(t, []*netsim.FaultSchedule{sched})
	c := fed.NewClient()
	c.SearchRadiusMeters = 100

	if results := c.Search("hit", pos, 10); len(results) != 0 {
		t.Fatalf("unexpected results from a failed member: %v", results)
	}
	if got := sched.Requests(); got != 1 {
		t.Fatalf("server saw %d requests, want 1 (no retries configured)", got)
	}
}

// TestRetryBudgetCapsFanoutRetries: two members each failing twice, but a
// request-wide budget of one retry — total attempts stay bounded.
func TestRetryBudgetCapsFanoutRetries(t *testing.T) {
	s0 := netsim.AlwaysFail(503)
	s1 := netsim.AlwaysFail(503)
	fed, pos, _, _ := faultyFederation(t, []*netsim.FaultSchedule{s0, s1})
	c := fed.NewClient()
	c.SearchRadiusMeters = 100
	c.MaxConcurrency = 1 // deterministic: servers visited in discovery order
	c.RetryPolicy = resilience.RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Millisecond, Budget: 1}

	_ = c.Search("hit", pos, 10)
	total := s0.Requests() + s1.Requests()
	// 2 first attempts + exactly 1 budgeted retry.
	if total != 3 {
		t.Fatalf("fan-out issued %d attempts (srv0=%d srv1=%d), want 3", total, s0.Requests(), s1.Requests())
	}
}

// TestBreakerStopsContactingPersistentFailure: after BreakerThreshold
// consecutive failures the member is excluded from fan-out before any
// HTTP; after the cooldown a half-open probe restores it.
func TestBreakerStopsContactingPersistentFailure(t *testing.T) {
	// Fails its first 2 requests, healthy afterwards — but the breaker
	// only lets the recovery be seen via the probe after the cooldown.
	sched := netsim.FailFirst(2, 503)
	fed, pos, _, urls := faultyFederation(t, []*netsim.FaultSchedule{sched, nil})
	clk := &fakeClock{t: time.Unix(1000, 0)}
	tr := resilience.NewTracker(resilience.Policy{BreakerThreshold: 2, BreakerCooldown: time.Minute})
	tr.Now = clk.Now

	c := fed.NewClient()
	c.SearchRadiusMeters = 100
	c.Resilience = tr

	// Searches 1 and 2 each hit the faulty member once and fail; the
	// breaker trips at the threshold.
	for i := 0; i < 2; i++ {
		if results := c.Search("hit", pos, 10); len(results) != 1 || results[0].Source != "srv-01" {
			t.Fatalf("search %d: want only the healthy member's result, got %v", i+1, results)
		}
	}
	if st := tr.Health(urls[0]).State; st != resilience.StateOpen {
		t.Fatalf("breaker state after %d failures = %v, want open", 2, st)
	}

	// Searches 3..5: the open member must not be contacted at all.
	for i := 0; i < 3; i++ {
		_ = c.Search("hit", pos, 10)
	}
	if got := sched.Requests(); got != 2 {
		t.Fatalf("open member saw %d requests, want 2 (excluded from fan-out while open)", got)
	}

	// After the cooldown, one half-open probe goes through, succeeds
	// (the schedule recovered), and the member rejoins the merge.
	clk.Advance(time.Minute)
	results := c.Search("hit", pos, 10)
	srcs := map[string]bool{}
	for _, r := range results {
		srcs[r.Source] = true
	}
	if !srcs["srv-00"] || !srcs["srv-01"] {
		t.Fatalf("recovered member missing from the merge: %v", srcs)
	}
	if st := tr.Health(urls[0]).State; st != resilience.StateClosed {
		t.Fatalf("breaker state after successful probe = %v, want closed", st)
	}
	if got := sched.Requests(); got != 3 {
		t.Fatalf("recovered member saw %d requests, want 3 (2 failures + 1 probe)", got)
	}
}

// TestHedgingDiscardsStragglerWithoutLeak: the member blackholes the first
// request; the hedge spawned after HedgeAfter wins with the second, the
// straggler is cancelled, and no goroutine outlives the call.
func TestHedgingDiscardsStragglerWithoutLeak(t *testing.T) {
	// Request 1 (the warm-up search) is healthy, request 2 (the hedged
	// search's primary) blackholes, everything after passes through.
	sched := netsim.NewFaultSchedule(
		netsim.FaultPhase{Mode: netsim.FaultNone, Requests: 1},
		netsim.FaultPhase{Mode: netsim.FaultBlackhole, Requests: 1},
	)
	fed, pos, _, _ := faultyFederation(t, []*netsim.FaultSchedule{sched})
	c := fed.NewClient()
	c.SearchRadiusMeters = 100
	// Generous enough that the healthy warm-up below never spawns an
	// unplanned hedge on a loaded runner (which would shift the schedule).
	c.HedgeAfter = 50 * time.Millisecond

	// Warm discovery and the HTTP connection pool so the goroutine
	// baseline already includes a keep-alive connection; the hedged
	// fan-out below must not add to it.
	if results := c.Search("hit", pos, 10); len(results) != 1 {
		t.Fatalf("warm-up search failed: %v", results)
	}
	before := runtime.NumGoroutine()

	results := c.Search("hit", pos, 10)
	if len(results) != 1 || results[0].Source != "srv-00" {
		t.Fatalf("hedge did not win over the blackholed primary: %v", results)
	}
	if got := sched.Requests(); got != 3 {
		t.Fatalf("server saw %d requests, want 3 (warm-up + primary + hedge)", got)
	}

	// The straggler (blackholed handler + hedging goroutine) must unwind
	// once the winner's cancellation propagates.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d now vs baseline %d", runtime.NumGoroutine(), before)
}

// TestCancellationNotCountedAgainstServerHealth pins the classification
// fix: a caller abandoning the request must not look like server failures
// (it used to be indistinguishable — every error was treated identically).
func TestCancellationNotCountedAgainstServerHealth(t *testing.T) {
	fed, pos, doubles, urls := faultyFederation(t, []*netsim.FaultSchedule{nil, nil})
	for _, d := range doubles {
		d.delay = 10 * time.Second // both members still sleeping when we cancel
	}
	tr := resilience.NewTracker(resilience.Policy{BreakerThreshold: 1})
	c := fed.NewClient()
	c.SearchRadiusMeters = 100
	c.Resilience = tr
	if anns := c.Discover(pos); len(anns) != 2 {
		t.Fatalf("discovered %d servers, want 2", len(anns))
	}

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		// Cancel once both handlers are actually in flight.
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			var inflight int64
			for _, d := range doubles {
				inflight += d.inflight.Load()
			}
			if inflight == 2 {
				break
			}
			time.Sleep(time.Millisecond)
		}
		cancel()
	}()
	_ = c.SearchCtx(ctx, "hit", pos, 10)

	for _, url := range urls {
		h := tr.Health(url)
		if h.ConsecutiveFailures != 0 || h.Failures != 0 || h.State != resilience.StateClosed {
			t.Fatalf("caller cancellation charged against %s: %+v", url, h)
		}
	}
}

// TestServerErrorsAndTimeoutsCountAgainstHealth is the other half of the
// distinction: a 5xx and a per-server timeout are the server's fault.
func TestServerErrorsAndTimeoutsCountAgainstHealth(t *testing.T) {
	s503 := netsim.AlwaysFail(503)
	shang := netsim.Blackhole()
	fed, pos, _, urls := faultyFederation(t, []*netsim.FaultSchedule{s503, shang})
	tr := resilience.NewTracker(resilience.Policy{BreakerThreshold: 1})
	c := fed.NewClient()
	c.SearchRadiusMeters = 100
	c.Resilience = tr
	c.PerServerTimeout = 50 * time.Millisecond

	_ = c.Search("hit", pos, 10)

	for i, url := range urls {
		h := tr.Health(url)
		if h.Failures == 0 || h.State != resilience.StateOpen {
			t.Fatalf("server %d (%s) failure not charged: %+v", i, url, h)
		}
	}
}

// TestPermanentRefusalNotChargedToHealth: a 403 policy denial is a healthy
// server saying no — it must be skipped (no result) but never trip a
// breaker or be retried.
func TestPermanentRefusalNotChargedToHealth(t *testing.T) {
	sched := netsim.AlwaysFail(403)
	fed, pos, _, urls := faultyFederation(t, []*netsim.FaultSchedule{sched})
	tr := resilience.NewTracker(resilience.Policy{
		Retry:            resilience.RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Millisecond},
		BreakerThreshold: 1,
	})
	c := fed.NewClient()
	c.SearchRadiusMeters = 100
	c.Resilience = tr

	if results := c.Search("hit", pos, 10); len(results) != 0 {
		t.Fatalf("refused request produced results: %v", results)
	}
	if got := sched.Requests(); got != 1 {
		t.Fatalf("refusal was retried: %d requests", got)
	}
	h := tr.Health(urls[0])
	if h.ConsecutiveFailures != 0 || h.State != resilience.StateClosed {
		t.Fatalf("refusal charged against health: %+v", h)
	}
}
