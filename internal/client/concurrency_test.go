package client_test

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"openflame/internal/core"
	"openflame/internal/geo"
	"openflame/internal/resilience"
	"openflame/internal/s2cell"
	"openflame/internal/search"
	"openflame/internal/wire"
	"openflame/internal/worldgen"
)

// delayedServer is a map-server test double: a live HTTP endpoint whose
// /search sleeps an injectable delay (honoring the request context, like
// the real server) before answering with one result named after itself.
type delayedServer struct {
	name     string
	delay    time.Duration
	pos      geo.LatLng
	requests atomic.Int64
	// inflight counts handlers currently sleeping — used to observe that
	// cancellation actually reached the server side.
	inflight atomic.Int64
}

func (d *delayedServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	d.requests.Add(1)
	d.inflight.Add(1)
	defer d.inflight.Add(-1)
	// Drain the body (as the real server's readJSON does) so the HTTP
	// server watches the connection and cancels r.Context() on client
	// disconnect.
	_, _ = io.Copy(io.Discard, r.Body)
	if d.delay > 0 {
		t := time.NewTimer(d.delay)
		defer t.Stop()
		select {
		case <-t.C:
		case <-r.Context().Done():
			return // client gone; abandon the response
		}
	}
	switch r.URL.Path {
	case "/search":
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(wire.SearchResponse{Results: []search.Result{
			{Name: "hit from " + d.name, Position: d.pos, TextScore: 1, Score: 1, Source: d.name},
		}})
	case "/info":
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(wire.Info{Name: d.name})
	default:
		http.NotFound(w, r)
	}
}

// delayedFederation stands up a DNS discovery tree with n delayed map-server
// doubles all announced on the cell covering pos.
func delayedFederation(t testing.TB, n int, delay time.Duration) (*core.Federation, geo.LatLng, []*delayedServer) {
	t.Helper()
	fed, err := core.NewFederation()
	if err != nil {
		t.Fatal(err)
	}
	pos := geo.LatLng{Lat: 40.4433, Lng: -79.9436}
	token := s2cell.FromLatLng(pos).Parent(16).Token()
	doubles := make([]*delayedServer, n)
	for i := 0; i < n; i++ {
		d := &delayedServer{name: fmt.Sprintf("srv-%02d", i), delay: delay, pos: pos}
		ts := httptest.NewServer(d)
		t.Cleanup(ts.Close)
		doubles[i] = d
		if err := fed.Registry.Register(wire.Info{
			Name: d.name, Coverage: []string{token}, Services: []wire.Service{wire.SvcSearch},
		}, ts.URL); err != nil {
			t.Fatal(err)
		}
	}
	return fed, pos, doubles
}

// TestFanoutWallClockIsSlowestServerNotSum is the acceptance criterion: 8
// servers each delayed 50ms must complete in under 2x one server's latency
// (the sequential client needed ~8x).
func TestFanoutWallClockIsSlowestServerNotSum(t *testing.T) {
	const n, delay = 8, 50 * time.Millisecond
	fed, pos, _ := delayedFederation(t, n, delay)
	c := fed.NewClient()
	// Keep the discovery covering small so the measurement isolates the
	// HTTP fan-out (the covering sweep is exercised by discovery's tests).
	c.SearchRadiusMeters = 100

	start := time.Now()
	results := c.Search("hit", pos, 2*n)
	elapsed := time.Since(start)

	sources := map[string]bool{}
	for _, r := range results {
		sources[r.Source] = true
	}
	if len(sources) != n {
		t.Fatalf("got results from %d of %d servers: %v", len(sources), n, sources)
	}
	if elapsed >= 2*delay {
		t.Fatalf("fan-out took %v; want < %v (2x single-server latency)", elapsed, 2*delay)
	}
}

// TestMaxConcurrencyOneIsSequential proves the knob reproduces the old
// sequential behaviour: wall time is the sum of the per-server delays and
// the merged results are identical to the concurrent run's.
func TestMaxConcurrencyOneIsSequential(t *testing.T) {
	const n, delay = 4, 40 * time.Millisecond
	fed, pos, _ := delayedFederation(t, n, delay)

	seq := fed.NewClient()
	seq.MaxConcurrency = 1
	start := time.Now()
	seqResults := seq.Search("hit", pos, 2*n)
	elapsed := time.Since(start)
	if elapsed < n*delay {
		t.Fatalf("MaxConcurrency=1 took %v; want >= %v (sequential sum)", elapsed, n*delay)
	}

	conc := fed.NewClient()
	concResults := conc.Search("hit", pos, 2*n)
	if len(seqResults) != len(concResults) {
		t.Fatalf("sequential found %d results, concurrent %d", len(seqResults), len(concResults))
	}
	for i := range seqResults {
		if !reflect.DeepEqual(seqResults[i], concResults[i]) {
			t.Fatalf("result %d differs: sequential %+v vs concurrent %+v",
				i, seqResults[i], concResults[i])
		}
	}
}

// TestNeutralResilienceIsByteIdentical is the determinism regression for
// the resilience layer: with MaxConcurrency=1, retries disabled, hedging
// disabled, and breakers disabled, a client running through the resilience
// layer (health tracking only) must produce byte-identical Search and
// Route results to the plain pre-resilience client.
func TestNeutralResilienceIsByteIdentical(t *testing.T) {
	w := worldgen.GenWorld(worldgen.DefaultWorldParams())
	f, err := core.DeployWorld(w)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	store := w.Stores[0]
	entrance := trueEntrance(store)

	base := f.NewClient()
	base.MaxConcurrency = 1
	withRes := f.NewClient()
	withRes.MaxConcurrency = 1
	// The zero policy: health is tracked, but no retries, no hedging, no
	// breakers — every call is a single plain attempt.
	withRes.Resilience = resilience.NewTracker(resilience.Policy{})

	marshal := func(v interface{}) []byte {
		b, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	a := marshal(base.Search(store.Products[0], entrance, 10))
	b := marshal(withRes.Search(store.Products[0], entrance, 10))
	if string(a) != string(b) {
		t.Fatalf("Search diverged under neutral resilience:\nplain: %s\nres:   %s", a, b)
	}

	from := geo.LatLng{Lat: 40.4400, Lng: -79.9990}
	to := geo.Offset(geo.Offset(from, 300, 0), 300, 90)
	ra, err := base.Route(from, to)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := withRes.Route(from, to)
	if err != nil {
		t.Fatal(err)
	}
	if string(marshal(ra)) != string(marshal(rb)) {
		t.Fatalf("Route diverged under neutral resilience:\nplain: %s\nres:   %s", marshal(ra), marshal(rb))
	}

	// The neutral tracker issued exactly as many HTTP requests as the
	// plain client — nothing was retried or hedged.
	if base.RequestCount() != withRes.RequestCount() {
		t.Fatalf("request counts diverged: plain %d vs resilience %d",
			base.RequestCount(), withRes.RequestCount())
	}
}

// TestCancellationAbortsInFlight cancels a search while every server is
// still sleeping: the call must return promptly, the server-side handlers
// must observe the disconnect, and no goroutines may leak.
func TestCancellationAbortsInFlight(t *testing.T) {
	const n = 4
	fed, pos, doubles := delayedFederation(t, n, 10*time.Second)
	c := fed.NewClient()
	// Prime discovery so the cancelled call is measuring the HTTP fan-out.
	if anns := c.Discover(pos); len(anns) != n {
		t.Fatalf("discovered %d servers, want %d", len(anns), n)
	}

	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		// Wait until the fan-out is actually in flight, then cancel.
		deadline := time.Now().Add(2 * time.Second)
		for time.Now().Before(deadline) {
			var inflight int64
			for _, d := range doubles {
				inflight += d.inflight.Load()
			}
			if inflight >= n {
				break
			}
			time.Sleep(time.Millisecond)
		}
		cancel()
	}()

	start := time.Now()
	results := c.SearchCtx(ctx, "hit", pos, 10)
	elapsed := time.Since(start)
	if elapsed > 2*time.Second {
		t.Fatalf("cancelled search took %v; want prompt return", elapsed)
	}
	if len(results) != 0 {
		t.Fatalf("cancelled search returned results: %v", results)
	}

	// Server-side handlers and client-side workers must all unwind.
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		var inflight int64
		for _, d := range doubles {
			inflight += d.inflight.Load()
		}
		if inflight == 0 && runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	var inflight int64
	for _, d := range doubles {
		inflight += d.inflight.Load()
	}
	t.Fatalf("after cancel: %d handlers still in flight, %d goroutines (baseline %d)",
		inflight, runtime.NumGoroutine(), before)
}

// TestPerServerTimeoutSkipsSlowServer: a hung federation member is skipped
// after PerServerTimeout while the healthy members' results still merge.
func TestPerServerTimeoutSkipsSlowServer(t *testing.T) {
	const n = 4
	fed, pos, doubles := delayedFederation(t, n, 0)
	doubles[0].delay = 5 * time.Second // one hung member

	c := fed.NewClient()
	c.PerServerTimeout = 100 * time.Millisecond
	start := time.Now()
	results := c.Search("hit", pos, 2*n)
	elapsed := time.Since(start)
	if elapsed > 2*time.Second {
		t.Fatalf("search with hung member took %v", elapsed)
	}
	sources := map[string]bool{}
	for _, r := range results {
		sources[r.Source] = true
	}
	if sources[doubles[0].name] {
		t.Fatal("hung server contributed a result")
	}
	if len(sources) != n-1 {
		t.Fatalf("healthy servers answered %d of %d: %v", len(sources), n-1, sources)
	}
}

// TestCancelledDiscoveryAbortsLookups cancels before discovery: no HTTP
// requests may be issued at all.
func TestCancelledDiscoveryAbortsLookups(t *testing.T) {
	fed, pos, doubles := delayedFederation(t, 3, 0)
	c := fed.NewClient()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if got := c.SearchCtx(ctx, "hit", pos, 10); len(got) != 0 {
		t.Fatalf("cancelled search returned %v", got)
	}
	for _, d := range doubles {
		if d.requests.Load() != 0 {
			t.Fatalf("server %s saw %d requests after pre-cancelled search", d.name, d.requests.Load())
		}
	}
}
