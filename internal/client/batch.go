package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"time"

	"openflame/internal/resilience"
	"openflame/internal/wire"
)

// batchReprobeInterval bounds how long a 404/405 keeps a server marked
// batch-incapable: a proxy hiccup or rolling deploy must not degrade a
// long-lived client to per-call HTTP forever.
const batchReprobeInterval = 5 * time.Minute

// batchCall posts the sub-requests to the server's /v1/batch endpoint in
// one round trip. It returns ok=false whenever the caller should fall back
// to per-call HTTP: batching disabled (client-wide or per-call via
// WithNoBatch), the batch too large, the call failing, or the server
// predating the endpoint — a 404/405 additionally remembers the server as
// batch-incapable (re-probed after batchReprobeInterval) so later requests
// skip the probe. Results are index-aligned with items.
func (c *Client) batchCall(ctx context.Context, baseURL string, items []wire.BatchItem) ([]wire.BatchItemResult, bool) {
	if !c.batchEnabled(ctx) || len(items) == 0 || len(items) > wire.MaxBatchItems {
		return nil, false
	}
	if c.batchUnsupported(baseURL) {
		return nil, false
	}
	var resp wire.BatchResponse
	if err := c.call(ctx, baseURL, "/v1/batch", wire.BatchRequest{Items: items}, &resp); err != nil {
		var he *resilience.HTTPError
		if errors.As(err, &he) && (he.StatusCode == http.StatusNotFound || he.StatusCode == http.StatusMethodNotAllowed) {
			c.markBatchUnsupported(baseURL)
		}
		return nil, false
	}
	// The endpoint answered: whatever the per-item outcomes, the server
	// speaks batch — clear any stale incapability memory so a re-probe
	// window is not consumed on the next request.
	c.clearBatchUnsupported(baseURL)
	if len(resp.Results) != len(items) {
		return nil, false
	}
	return resp.Results, true
}

// batchUnsupported reports whether the server is remembered as lacking
// /v1/batch. Expired entries are deleted on observation — the memory is a
// probe-suppression window, not a permanent verdict, and a since-upgraded
// server must regain batching without a client restart.
func (c *Client) batchUnsupported(baseURL string) bool {
	c.batchMu.Lock()
	defer c.batchMu.Unlock()
	seen, unsupported := c.batchUnsup[baseURL]
	if !unsupported {
		return false
	}
	if time.Since(seen) >= batchReprobeInterval {
		delete(c.batchUnsup, baseURL)
		return false
	}
	return true
}

// markBatchUnsupported remembers a 404/405 from the server's /v1/batch,
// pruning every expired entry so a long-lived client roaming a churning
// federation does not accumulate dead server URLs.
func (c *Client) markBatchUnsupported(baseURL string) {
	c.batchMu.Lock()
	defer c.batchMu.Unlock()
	if c.batchUnsup == nil {
		c.batchUnsup = make(map[string]time.Time)
	}
	now := time.Now()
	for url, seen := range c.batchUnsup {
		if now.Sub(seen) >= batchReprobeInterval {
			delete(c.batchUnsup, url)
		}
	}
	c.batchUnsup[baseURL] = now
}

// clearBatchUnsupported drops the server's batch-incapability memory.
func (c *Client) clearBatchUnsupported(baseURL string) {
	c.batchMu.Lock()
	delete(c.batchUnsup, baseURL)
	c.batchMu.Unlock()
}

// decodeBatchResult unmarshals one sub-request's payload, surfacing its
// per-item status as the same HTTPError a dedicated endpoint would return.
func decodeBatchResult(res wire.BatchItemResult, out interface{}) error {
	if res.Status != http.StatusOK {
		return &resilience.HTTPError{StatusCode: res.Status, Msg: res.Error}
	}
	return json.Unmarshal(res.Body, out)
}

// geocodeCoarseBatch answers Geocode's world-provider conversation — the
// coarse suffix walk plus the fine full-address query — in at most two
// /v1/batch round trips instead of up to len(parts)+1 sequential calls.
// The first batch carries only the shortest tail and the fine query: in
// the common case (city-level tail resolves immediately) that is ONE round
// trip costing the server the same two geocodes the sequential walk did —
// no compute inflation. Only a first-tail miss pays a second batch probing
// the remaining suffixes, shortest first, preserving the walk's
// first-match semantics exactly. ok=false falls back to the sequential
// walk.
func (c *Client) geocodeCoarseBatch(ctx context.Context, parts []string, address string) (coarse wire.GeocodeResult, coarseFound bool, fine *wire.GeocodeResult, ok bool) {
	worldKey := singletonKey("world", c.WorldURL)
	// Sessioned calls thread the marks through each item body — batch
	// items are full requests, so consistency crosses the batch boundary
	// intact.
	envelope := consistencyFor(ctx, worldKey)
	item := func(q string) (wire.BatchItem, error) {
		req := wire.GeocodeRequest{Query: q, Limit: 1}
		req.SetConsistency(envelope)
		b, err := json.Marshal(req)
		return wire.BatchItem{Service: wire.SvcGeocode, Body: b}, err
	}
	first, err1 := item(join(parts[len(parts)-1:]))
	full, err2 := item(address)
	if err1 != nil || err2 != nil {
		return coarse, false, nil, false
	}
	results, bok := c.batchCall(ctx, c.WorldURL, []wire.BatchItem{first, full})
	if !bok {
		return coarse, false, nil, false
	}
	var tresp, fresp wire.GeocodeResponse
	if err := decodeBatchResult(results[0], &tresp); err != nil {
		return coarse, false, nil, false
	}
	if err := decodeBatchResult(results[1], &fresp); err != nil {
		return coarse, false, nil, false
	}
	observeSession(ctx, worldKey, &tresp)
	observeSession(ctx, worldKey, &fresp)
	if len(fresp.Results) > 0 {
		r := fresp.Results[0]
		fine = &r
	}
	if len(tresp.Results) > 0 {
		return tresp.Results[0], true, fine, true
	}
	if len(parts) == 1 {
		return coarse, false, fine, true // nothing to walk further
	}
	// Shortest tail missed: probe the remaining suffixes in one more trip.
	items := make([]wire.BatchItem, 0, len(parts)-1)
	for cut := 2; cut <= len(parts); cut++ {
		it, err := item(join(parts[len(parts)-cut:]))
		if err != nil {
			return coarse, false, nil, false
		}
		items = append(items, it)
	}
	results2, bok := c.batchCall(ctx, c.WorldURL, items)
	if !bok {
		return coarse, false, nil, false
	}
	for i := range results2 {
		var resp wire.GeocodeResponse
		if err := decodeBatchResult(results2[i], &resp); err != nil {
			return coarse, false, nil, false
		}
		observeSession(ctx, worldKey, &resp)
		if len(resp.Results) > 0 {
			return resp.Results[0], true, fine, true
		}
	}
	return coarse, false, fine, true
}

// expandLegsBatch expands every chosen route leg on one server in a single
// /v1/batch round trip, recording results into the caller's indexed slots.
// groups is the route's plan (legs carry their group index) so sessioned
// items are marked — and their returned marks recorded — under the right
// replica-set key. Returns false (recording nothing) when the caller
// should fall back to per-leg calls.
func (c *Client) expandLegsBatch(ctx context.Context, chain []metaEdge, groups []planGroup, idxs []int,
	legs []Leg, lengths []float64, legErrs []error, expanded []bool) bool {
	url := chain[idxs[0]].server
	keyOf := func(e metaEdge) string {
		if e.group >= 0 && e.group < len(groups) {
			return groups[e.group].Key
		}
		return ""
	}
	items := make([]wire.BatchItem, len(idxs))
	for k, i := range idxs {
		e := chain[i]
		req := wire.RouteRequest{
			FromNode: e.fromNode, ToNode: e.toNode,
			From: e.fromPos, To: e.toPos,
		}
		req.SetConsistency(consistencyFor(ctx, keyOf(e)))
		b, err := json.Marshal(req)
		if err != nil {
			return false
		}
		items[k] = wire.BatchItem{Service: wire.SvcRoute, Body: b}
	}
	results, ok := c.batchCall(ctx, url, items)
	if !ok {
		return false
	}
	name := url
	if info, err := c.infoCtx(ctx, url); err == nil {
		name = info.Name
	}
	for k, i := range idxs {
		var resp wire.RouteResponse
		if err := decodeBatchResult(results[k], &resp); err != nil {
			legErrs[i] = fmt.Errorf("client: leg expansion on %s failed: %v", url, err)
			continue
		}
		if !resp.Found {
			legErrs[i] = fmt.Errorf("client: leg expansion on %s failed: no route found", url)
			continue
		}
		observeSession(ctx, keyOf(chain[i]), &resp)
		legs[i] = Leg{Server: name, URL: url, Points: resp.Points, CostSeconds: resp.CostSeconds}
		lengths[i] = resp.LengthMeters
		expanded[i] = true
	}
	return true
}

// groupLegsByServer buckets chain indices by serving URL, in first-
// appearance order, so each server's legs can share one batch round trip.
func groupLegsByServer(chain []metaEdge) [][]int {
	var order []string
	byURL := make(map[string][]int)
	for i, e := range chain {
		if _, seen := byURL[e.server]; !seen {
			order = append(order, e.server)
		}
		byURL[e.server] = append(byURL[e.server], i)
	}
	out := make([][]int, len(order))
	for gi, url := range order {
		out[gi] = byURL[url]
	}
	return out
}
