package client_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"openflame/internal/core"
	"openflame/internal/geo"
	"openflame/internal/resilience"
	"openflame/internal/s2cell"
	"openflame/internal/search"
	"openflame/internal/wire"
)

// callLog records the order servers were contacted in, across a whole
// federation of doubles.
type callLog struct {
	mu    sync.Mutex
	calls []string
}

func (l *callLog) add(name string) {
	l.mu.Lock()
	l.calls = append(l.calls, name)
	l.mu.Unlock()
}

func (l *callLog) snapshot() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]string(nil), l.calls...)
}

// replicaDouble is a map-server double for replica-plan tests: it can be
// told to fail, to be slow, and it logs every contact.
type replicaDouble struct {
	name     string
	pos      geo.LatLng
	fail     atomic.Bool
	delay    time.Duration
	requests atomic.Int64
	log      *callLog
}

func (d *replicaDouble) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	d.requests.Add(1)
	if d.log != nil {
		d.log.add(d.name)
	}
	_, _ = io.Copy(io.Discard, r.Body)
	if d.delay > 0 {
		time.Sleep(d.delay)
	}
	if d.fail.Load() {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		_ = json.NewEncoder(w).Encode(wire.ErrorResponse{Error: "double: injected failure"})
		return
	}
	switch r.URL.Path {
	case "/search":
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(wire.SearchResponse{Results: []search.Result{
			{Name: "hit from " + d.name, Position: d.pos, TextScore: 1, Score: 1, Source: d.name},
		}})
	case "/info":
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(wire.Info{Name: d.name})
	default:
		http.NotFound(w, r)
	}
}

// replicaSpec names one double and the replica set it registers under
// ("" = solo member).
type replicaSpec struct {
	name string
	set  string
}

// replicaFederation registers the specified doubles on one shared cell, so
// a single discovery finds them all.
func replicaFederation(t testing.TB, specs []replicaSpec) (*core.Federation, geo.LatLng, map[string]*replicaDouble, *callLog) {
	t.Helper()
	fed, err := core.NewFederation()
	if err != nil {
		t.Fatal(err)
	}
	pos := geo.LatLng{Lat: 40.4433, Lng: -79.9436}
	token := s2cell.FromLatLng(pos).Parent(16).Token()
	log := &callLog{}
	doubles := make(map[string]*replicaDouble, len(specs))
	for _, spec := range specs {
		d := &replicaDouble{name: spec.name, pos: pos, log: log}
		ts := httptest.NewServer(d)
		t.Cleanup(ts.Close)
		doubles[spec.name] = d
		if err := fed.Registry.RegisterReplica(wire.Info{
			Name: spec.name, Coverage: []string{token}, Services: []wire.Service{wire.SvcSearch},
		}, ts.URL, spec.set); err != nil {
			t.Fatal(err)
		}
	}
	return fed, pos, doubles, log
}

func totalRequests(doubles map[string]*replicaDouble) int64 {
	var n int64
	for _, d := range doubles {
		n += d.requests.Load()
	}
	return n
}

// TestReplicaSetCostsOneRequest is the steady-state acceptance criterion:
// N healthy replicas of one region cost exactly ONE request per client
// query — not N requests whose answers dedup to one.
func TestReplicaSetCostsOneRequest(t *testing.T) {
	const n = 8
	specs := make([]replicaSpec, n)
	for i := range specs {
		specs[i] = replicaSpec{name: fmt.Sprintf("hot-%02d", i), set: "hot-region"}
	}
	fed, pos, doubles, _ := replicaFederation(t, specs)
	c := fed.NewClient()
	c.SearchRadiusMeters = 100

	results := c.Search("hit", pos, 10)
	if len(results) != 1 {
		t.Fatalf("results = %+v, want exactly one (one group)", results)
	}
	if got := totalRequests(doubles); got != 1 {
		t.Fatalf("federation saw %d requests, want 1", got)
	}
	if got := c.RequestCount(); got != 1 {
		t.Fatalf("client issued %d requests, want 1", got)
	}
	// Ten more queries: still one request each, all to the same replica
	// (deterministic selection with no health data to differentiate).
	for i := 0; i < 10; i++ {
		c.Search("hit", pos, 10)
	}
	if got := totalRequests(doubles); got != 11 {
		t.Fatalf("federation saw %d requests after 11 queries, want 11", got)
	}
}

// TestReplicaFailoverOnError: a fault on the chosen replica fails the
// request over to a sibling — the query still succeeds and the region is
// not lost.
func TestReplicaFailoverOnError(t *testing.T) {
	specs := []replicaSpec{
		{name: "hot-00", set: "hot-region"},
		{name: "hot-01", set: "hot-region"},
		{name: "hot-02", set: "hot-region"},
	}
	fed, pos, doubles, log := replicaFederation(t, specs)
	doubles["hot-00"].fail.Store(true) // the plan's first pick

	c := fed.NewClient()
	c.SearchRadiusMeters = 100
	results := c.Search("hit", pos, 10)
	if len(results) != 1 || results[0].Source != "hot-01" {
		t.Fatalf("failover results = %+v, want one hit from hot-01", results)
	}
	if got := log.snapshot(); !reflect.DeepEqual(got, []string{"hot-00", "hot-01"}) {
		t.Fatalf("contact order = %v, want [hot-00 hot-01]", got)
	}
	// Both siblings down: the third still answers.
	doubles["hot-01"].fail.Store(true)
	results = c.Search("hit", pos, 10)
	if len(results) != 1 || results[0].Source != "hot-02" {
		t.Fatalf("double failover results = %+v, want hit from hot-02", results)
	}
	// Whole set down: the query degrades to empty, not to an error loop.
	doubles["hot-02"].fail.Store(true)
	if results := c.Search("hit", pos, 10); len(results) != 0 {
		t.Fatalf("all-down search returned %+v", results)
	}
}

// TestReplicaPlanDeterminism pins the MaxConcurrency=1 plan order: groups
// in discovery order (replica sets keyed by first appearance, solo servers
// as singletons), first member of each group contacted, byte-identical to
// the concurrent client's merged output.
func TestReplicaPlanDeterminism(t *testing.T) {
	specs := []replicaSpec{
		{name: "a-1", set: "set-a"},
		{name: "a-2", set: "set-a"},
		{name: "b-1", set: "set-b"},
		{name: "b-2", set: "set-b"},
		{name: "z-solo", set: ""},
	}
	fed, pos, _, log := replicaFederation(t, specs)
	seq := fed.NewClient()
	seq.MaxConcurrency = 1
	seq.SearchRadiusMeters = 100

	seqResults := seq.Search("hit", pos, 10)
	want := []string{"a-1", "b-1", "z-solo"}
	if got := log.snapshot(); !reflect.DeepEqual(got, want) {
		t.Fatalf("sequential plan contacted %v, want %v", got, want)
	}
	if len(seqResults) != 3 {
		t.Fatalf("sequential results = %+v", seqResults)
	}

	conc := fed.NewClient()
	conc.SearchRadiusMeters = 100
	concResults := conc.Search("hit", pos, 10)
	if !reflect.DeepEqual(seqResults, concResults) {
		t.Fatalf("concurrent merge diverged:\nseq:  %+v\nconc: %+v", seqResults, concResults)
	}
}

// TestReplicaSelectionUsesHealth: with a resilience tracker active, an
// unsampled sibling is probed before a known-slow one, and once both have
// latency samples the lower-EWMA replica keeps the traffic.
func TestReplicaSelectionUsesHealth(t *testing.T) {
	specs := []replicaSpec{
		{name: "a-slow", set: "hot-region"},
		{name: "b-fast", set: "hot-region"},
	}
	fed, pos, doubles, log := replicaFederation(t, specs)
	doubles["a-slow"].delay = 60 * time.Millisecond

	c := fed.NewClient()
	c.SearchRadiusMeters = 100
	c.Resilience = resilience.NewTracker(resilience.Policy{})

	// Cold: no samples anywhere, discovery order wins → "a-slow" (sorts
	// first) is contacted and records its 60ms EWMA.
	c.Search("hit", pos, 10)
	// Second query: "b-fast" has no samples (EWMA 0 sorts below 60ms) → probed.
	c.Search("hit", pos, 10)
	// Third query: both sampled; fast's EWMA is far lower → keeps traffic.
	c.Search("hit", pos, 10)
	want := []string{"a-slow", "b-fast", "b-fast"}
	if got := log.snapshot(); !reflect.DeepEqual(got, want) {
		t.Fatalf("health-aware selection contacted %v, want %v", got, want)
	}
}

// TestReplicaBreakerExcludesMember: a replica whose circuit breaker is open
// is excluded from selection without HTTP; siblings carry the set.
func TestReplicaBreakerExcludesMember(t *testing.T) {
	specs := []replicaSpec{
		{name: "hot-00", set: "hot-region"},
		{name: "hot-01", set: "hot-region"},
	}
	fed, pos, doubles, _ := replicaFederation(t, specs)
	doubles["hot-00"].fail.Store(true)

	c := fed.NewClient()
	c.SearchRadiusMeters = 100
	c.BreakerThreshold = 1
	c.BreakerCooldown = time.Hour

	// First query: hot-00 fails (breaker opens), sibling answers.
	if results := c.Search("hit", pos, 10); len(results) != 1 || results[0].Source != "hot-01" {
		t.Fatalf("first search = %+v", results)
	}
	failedAfterFirst := doubles["hot-00"].requests.Load()
	// Subsequent queries: the open breaker keeps hot-00 out of the plan
	// entirely — no further HTTP reaches it.
	for i := 0; i < 5; i++ {
		if results := c.Search("hit", pos, 10); len(results) != 1 || results[0].Source != "hot-01" {
			t.Fatalf("search %d = %+v", i, results)
		}
	}
	if got := doubles["hot-00"].requests.Load(); got != failedAfterFirst {
		t.Fatalf("open-breaker member contacted again: %d -> %d requests", failedAfterFirst, got)
	}
}
