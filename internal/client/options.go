package client

import (
	"context"
	"errors"
	"sort"
	"sync"
	"time"

	"openflame/internal/resilience"
	"openflame/internal/wire"
)

// This file is the v2 API's option surface: every service has ONE ctx-first
// method (SearchV2, GeocodeV2, ReverseGeocodeV2, LocalizeV2, RouteV2,
// DiscoverV2, InfoV2, TilePNGV2) taking variadic CallOptions, replacing the
// Foo/FooCtx/FooFanout/FooFanoutCtx wrapper triplets of the v1 surface
// (kept in legacy.go as deprecated delegating wrappers). Options are scoped
// to the call: they override the client-level knobs without mutating the
// shared Client.

// Consistency selects the read-consistency contract of a v2 call.
type Consistency int

const (
	// ConsistencyEventual is the default: any discovered replica may
	// answer, with no ordering relation between successive reads — exactly
	// the v1 client.
	ConsistencyEventual Consistency = iota
	// ConsistencySession threads a session token through the call: every
	// answer returns the replica's high-water mark, every later sessioned
	// read refuses to be served by a replica that has not caught up to the
	// marks already observed (wire.StatusStaleReplica → failover to a
	// sibling) — monotonic reads and read-your-writes across replica
	// failover. Uses the client's shared session unless WithSession names
	// one.
	ConsistencySession
)

// Session is a consistency token: the high-water marks a sequence of
// reads has observed, keyed by plan-group key (the replica-set id, or the
// synthetic singleton key of a solo server) and, within a group, by the
// ORIGIN that minted each mark. Keeping one mark per origin — rather than
// one per group — makes concurrent reads race-free: two reads answered by
// different members merely fill different slots, and every later read
// requires the server to vouch for ALL of them, so nothing a session has
// observed can be read back out of existence. Distinct sessions are
// causally independent; one session's reads are monotonic. Safe for
// concurrent use.
type Session struct {
	mu    sync.Mutex
	marks map[string]map[string]wire.SessionMark // group key → origin → mark
}

// NewSession creates an empty session.
func NewSession() *Session {
	return &Session{marks: make(map[string]map[string]wire.SessionMark)}
}

// marksFor returns the session's marks for a plan-group key, sorted by
// origin so envelopes are deterministic (nil before the first read).
func (s *Session) marksFor(key string) []wire.SessionMark {
	s.mu.Lock()
	defer s.mu.Unlock()
	byOrigin := s.marks[key]
	if len(byOrigin) == 0 {
		return nil
	}
	out := make([]wire.SessionMark, 0, len(byOrigin))
	for _, m := range byOrigin {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Origin < out[j].Origin })
	return out
}

// observe merges a mark returned by a group's answering replica into the
// origin's slot: within one log incarnation the mark advances
// monotonically; a NEW incarnation replaces the old mark outright — a
// restarted origin's previous log can never be vouched for again, and
// pinning it would make the whole group permanently unservable for this
// session.
func (s *Session) observe(key string, m wire.SessionMark) {
	if m.Origin == "" {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	byOrigin := s.marks[key]
	if byOrigin == nil {
		byOrigin = make(map[string]wire.SessionMark, 1)
		s.marks[key] = byOrigin
	}
	cur, ok := byOrigin[m.Origin]
	if ok && cur.Log == m.Log && m.Seq <= cur.Seq {
		return
	}
	byOrigin[m.Origin] = m
}

// healRestartedOrigin handles a stale-replica refusal that carried the
// refuser's current mark: when the refuser IS the origin of a mark this
// session holds and its log incarnation differs, the held incarnation is
// dead — no member can ever vouch for it again (the origin refuses it by
// incarnation, siblings' sync positions re-key on their next pull) — and
// pinning it would make the group permanently unservable. The slot is
// replaced with the origin's current mark: the dead incarnation's
// unsynced writes are genuinely lost, and the replacement still demands
// the new incarnation's observed head, so nothing recoverable is
// forfeited. Marks from live incarnations (a merely-lagging refuser) are
// left strictly alone.
func (s *Session) healRestartedOrigin(key string, current wire.SessionMark) {
	if current.Origin == "" || current.Log == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	byOrigin := s.marks[key]
	cur, ok := byOrigin[current.Origin]
	if !ok || cur.Log == 0 || cur.Log == current.Log {
		return
	}
	byOrigin[current.Origin] = current
}

// Marks returns a copy of the session's current marks per group, sorted
// by origin (diagnostics and tests).
func (s *Session) Marks() map[string][]wire.SessionMark {
	s.mu.Lock()
	keys := make([]string, 0, len(s.marks))
	for k := range s.marks {
		keys = append(keys, k)
	}
	s.mu.Unlock()
	out := make(map[string][]wire.SessionMark, len(keys))
	for _, k := range keys {
		out[k] = s.marksFor(k)
	}
	return out
}

// CallOption tunes one v2 call.
type CallOption func(*callOpts)

// callOpts is the resolved per-call configuration. The zero value
// reproduces the client-level knobs exactly — a v2 call with no options is
// byte-identical to its v1 wrapper.
type callOpts struct {
	maxServers  int
	timeout     time.Duration
	timeoutSet  bool
	noBatch     bool
	consistency Consistency
	session     *Session
}

// WithMaxServers bounds how many replica groups of the plan may answer
// (0 = all) — the E6 recall-vs-fanout knob, previously the FooFanout
// variants' extra parameter.
func WithMaxServers(n int) CallOption {
	return func(o *callOpts) { o.maxServers = n }
}

// WithTimeout overrides the client's PerServerTimeout for this call
// (0 removes the cap). Like the client knob it budgets each individual
// server attempt, retries and hedges included, not the whole fan-out.
func WithTimeout(d time.Duration) CallOption {
	return func(o *callOpts) { o.timeout, o.timeoutSet = d, true }
}

// WithNoBatch disables request coalescing (/v1/batch) for this call even
// when the client has UseBatch on.
func WithNoBatch() CallOption {
	return func(o *callOpts) { o.noBatch = true }
}

// WithConsistency selects the call's read-consistency contract.
// WithConsistency(ConsistencySession) uses the client's shared session.
func WithConsistency(level Consistency) CallOption {
	return func(o *callOpts) { o.consistency = level }
}

// WithSession runs the call inside an explicit session (implies
// ConsistencySession). Callers serving several independent users from one
// Client give each their own NewSession.
func WithSession(s *Session) CallOption {
	return func(o *callOpts) {
		o.session = s
		o.consistency = ConsistencySession
	}
}

// Session returns the client's shared session — the one
// WithConsistency(ConsistencySession) threads through calls when no
// explicit WithSession is given.
func (c *Client) Session() *Session {
	c.sessOnce.Do(func() { c.sess = NewSession() })
	return c.sess
}

// resolveOpts folds the options into the per-call configuration. The
// consistency LEVEL decides whether a session is in play (last option
// wins): WithConsistency(ConsistencyEventual) after WithSession opts the
// call back out, and ConsistencySession without an explicit session binds
// the client's shared one.
func (c *Client) resolveOpts(opts []CallOption) *callOpts {
	o := &callOpts{}
	for _, f := range opts {
		if f != nil {
			f(o)
		}
	}
	if o.consistency != ConsistencySession {
		o.session = nil
	} else if o.session == nil {
		o.session = c.Session()
	}
	return o
}

// callOptsKey carries the resolved options down the call tree — the plan,
// batch, and transport layers read them from the context instead of
// growing an options parameter on every internal signature.
type callOptsKey struct{}

// withCallOpts resolves opts and scopes them to the returned context.
func (c *Client) withCallOpts(ctx context.Context, opts []CallOption) context.Context {
	return context.WithValue(ctx, callOptsKey{}, c.resolveOpts(opts))
}

// callOptsFrom returns the call's resolved options (nil outside a v2
// call — e.g. a test driving an internal helper directly).
func callOptsFrom(ctx context.Context) *callOpts {
	o, _ := ctx.Value(callOptsKey{}).(*callOpts)
	return o
}

// sessionFrom returns the call's session (nil for eventual reads).
func sessionFrom(ctx context.Context) *Session {
	if o := callOptsFrom(ctx); o != nil {
		return o.session
	}
	return nil
}

// batchEnabled reports whether this call may coalesce sub-requests into
// /v1/batch round trips.
func (c *Client) batchEnabled(ctx context.Context) bool {
	if o := callOptsFrom(ctx); o != nil && o.noBatch {
		return false
	}
	return c.UseBatch
}

// consistencyFor builds the request envelope for one plan-group key, nil
// when the call is not sessioned. An empty envelope (first read of the
// group) imposes nothing but still asks the server for its mark.
func consistencyFor(ctx context.Context, key string) *wire.ReadConsistency {
	sess := sessionFrom(ctx)
	if sess == nil {
		return nil
	}
	return &wire.ReadConsistency{Marks: sess.marksFor(key)}
}

// observeSession records the mark a sessioned response carried (no-op for
// eventual reads and mark-less responses).
func observeSession(ctx context.Context, key string, resp interface{}) {
	sess := sessionFrom(ctx)
	if sess == nil {
		return
	}
	if sg, ok := resp.(wire.SessionCarrier); ok {
		if m := sg.GetSession(); m != nil {
			sess.observe(key, *m)
		}
	}
}

// callKeyed is call with session bookkeeping for one plan-group key: the
// group's marks ride out in the request envelope, the replica's updated
// mark is recorded into its origin slot from the response. The transport
// path itself is untouched — an un-sessioned callKeyed is exactly call.
func (c *Client) callKeyed(ctx context.Context, key, baseURL, path string, req, resp interface{}) error {
	if rc := consistencyFor(ctx, key); rc != nil {
		if cc, ok := req.(wire.ConsistencyCarrier); ok {
			cc.SetConsistency(rc)
		}
	}
	err := c.call(ctx, baseURL, path, req, resp)
	if err == nil {
		observeSession(ctx, key, resp)
	} else if sess := sessionFrom(ctx); sess != nil {
		var he *resilience.HTTPError
		if errors.As(err, &he) && he.StatusCode == wire.StatusStaleReplica && he.Session != nil {
			sess.healRestartedOrigin(key, *he.Session)
		}
	}
	return err
}
