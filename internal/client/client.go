// Package client implements the OpenFLAME client of Figure 2: it discovers
// map servers for a location through the DNS-based discovery layer, fans
// location-based service requests out to them over HTTP, and assembles the
// answers — ranking merged search results, stitching cross-server routes
// through shared portals, selecting the most plausible localization fix,
// and compositing tiles (§5.2).
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"openflame/internal/discovery"
	"openflame/internal/fanout"
	"openflame/internal/geo"
	"openflame/internal/geocode"
	"openflame/internal/loc"
	"openflame/internal/resilience"
	"openflame/internal/s2cell"
	"openflame/internal/search"
	"openflame/internal/wire"
)

// Client is an OpenFLAME client. Create with New; safe for concurrent use.
//
// Every service method fans out to the servers discovered for the request
// concurrently (the client is the federation's aggregation point, §5.2), so
// end-to-end latency tracks the slowest responding server, not the sum of
// all of them.
//
// The v2 surface is one ctx-first method per service — SearchV2, GeocodeV2,
// ReverseGeocodeV2, LocalizeV2, RouteV2, DiscoverV2, InfoV2, TilePNGV2 —
// taking variadic CallOptions (WithMaxServers, WithTimeout, WithNoBatch,
// WithConsistency, WithSession; see options.go). The v1 wrapper triplets
// live in legacy.go, deprecated, each delegating to its v2 core with
// default options.
type Client struct {
	disc *discovery.Client
	http *http.Client

	// User and App are the identity assertions sent with each request
	// (§5.3).
	User string
	App  string
	// WorldURL names the large world-map provider used for coarse
	// geocoding (§5.2 names OpenStreetMap for this role).
	WorldURL string
	// SearchRadiusMeters bounds discovery-based search (default 1000).
	SearchRadiusMeters float64
	// MaxConcurrency bounds the per-request fan-out worker pool (default
	// fanout.DefaultLimit; 1 reproduces the sequential client).
	MaxConcurrency int
	// PerServerTimeout, when > 0, caps each individual server call so one
	// hung federation member cannot stall the merge; the slow server is
	// skipped like any other failure. The cap spans the whole resilient
	// call — retries and hedges included.
	PerServerTimeout time.Duration
	// UseBatch, when true, coalesces a request's sub-queries to the same
	// server — Geocode's coarse suffix walk + fine world query, Route's
	// per-server leg expansions — into single POST /v1/batch round trips.
	// Servers without the endpoint (404/405) transparently fall back to
	// per-call HTTP and are remembered as batch-incapable. False
	// reproduces the per-call client exactly.
	UseBatch bool

	// RetryPolicy, HedgeAfter, BreakerThreshold and BreakerCooldown are
	// the resilience knobs (see internal/resilience): transient per-server
	// failures retried with jittered backoff within a budget, a second
	// hedge attempt raced against a straggler after the server's tracked
	// p95, and a circuit breaker that stops contacting a persistently
	// failing member until a half-open probe restores it. All zero values
	// reproduce the un-resilient client exactly. Set them before the
	// first request; they are captured into a tracker on first use.
	RetryPolicy      resilience.RetryPolicy
	HedgeAfter       time.Duration
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// Resilience, when non-nil, is used instead of a tracker built from
	// the knobs above — tests inject trackers with fake clocks, and
	// callers can share one tracker across clients.
	Resilience *resilience.Tracker

	requests   atomic.Int64
	resOnce    sync.Once
	res        *resilience.Tracker
	infoMu     sync.Mutex
	infoCache  map[string]wire.Info
	infoFlight fanout.Group[wire.Info]
	batchMu    sync.Mutex
	batchUnsup map[string]time.Time // server → when /v1/batch was last observed missing
	sessOnce   sync.Once
	sess       *Session // the client's shared consistency session (lazy)
}

// New creates a client over a discovery client and an HTTP client
// (pass http.DefaultClient or a test server's client).
func New(disc *discovery.Client, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{
		disc:               disc,
		http:               httpClient,
		SearchRadiusMeters: 1000,
		infoCache:          make(map[string]wire.Info),
	}
}

// RequestCount returns the number of HTTP requests issued (the fan-out
// metric reported by the experiments). Retries and hedges count: they are
// real load on the federation.
func (c *Client) RequestCount() int64 { return c.requests.Load() }

// tracker returns the client's resilience tracker: the injected Resilience
// if set, one built from the knobs if any is active, nil otherwise (the
// nil tracker is the fast path — calls bypass the resilience layer
// entirely, reproducing the pre-resilience client byte for byte).
func (c *Client) tracker() *resilience.Tracker {
	c.resOnce.Do(func() {
		if c.Resilience != nil {
			c.res = c.Resilience
			return
		}
		p := resilience.Policy{
			Retry:            c.RetryPolicy,
			HedgeAfter:       c.HedgeAfter,
			BreakerThreshold: c.BreakerThreshold,
			BreakerCooldown:  c.BreakerCooldown,
		}
		if p.Enabled() {
			c.res = resilience.NewTracker(p)
		}
	})
	return c.res
}

// ServerHealth exposes the tracked health of one server (zero value when
// no resilience layer is active or the server is unknown).
func (c *Client) ServerHealth(baseURL string) resilience.Health {
	if t := c.tracker(); t != nil {
		return t.Health(baseURL)
	}
	return resilience.Health{}
}

// available reports whether a server should be included in a fan-out:
// false only while its circuit breaker is open (it rejoins through
// half-open probes once the cooldown elapses).
func (c *Client) available(baseURL string) bool {
	t := c.tracker()
	return t == nil || t.Available(baseURL)
}

// availableAnns drops federation members whose breaker is open before any
// HTTP is issued — the fan-out never waits on a member known to be down.
func (c *Client) availableAnns(anns []discovery.Announcement) []discovery.Announcement {
	if c.tracker() == nil {
		return anns
	}
	out := make([]discovery.Announcement, 0, len(anns))
	for _, a := range anns {
		if c.available(a.URL) {
			out = append(out, a)
		}
	}
	return out
}

// DiscoverV2 exposes raw discovery for applications: every map server
// announced on the location's cell ancestor chain.
func (c *Client) DiscoverV2(ctx context.Context, ll geo.LatLng, opts ...CallOption) []discovery.Announcement {
	ctx = c.withCallOpts(ctx, opts)
	return c.disc.DiscoverCtx(ctx, ll)
}

// withRetryBudget attaches the policy's request-wide retry budget once per
// logical request: a few bad members must not multiply the request's cost
// by MaxAttempts. Multi-stage requests (Route's pricing then leg
// expansion) attach at the top so all stages share one budget.
func (c *Client) withRetryBudget(ctx context.Context) context.Context {
	if t := c.tracker(); t != nil && t.Retry.Budget > 0 && !resilience.HasBudget(ctx) {
		return resilience.WithBudget(ctx, t.Retry.Budget)
	}
	return ctx
}

// perServerCtx applies the per-server timeout — the call-scoped
// WithTimeout override when present, else the client's PerServerTimeout —
// to one server call. The returned cancel must be called when the call
// finishes.
func (c *Client) perServerCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	d := c.PerServerTimeout
	if o := callOptsFrom(ctx); o != nil && o.timeoutSet {
		d = o.timeout
	}
	if d > 0 {
		return context.WithTimeout(ctx, d)
	}
	return ctx, func() {}
}

// forEachServer runs fn over n servers on the client's bounded worker pool,
// giving each call its own per-server timeout. fn records results into
// caller-owned indexed slots; failed or cancelled servers simply leave
// their slot empty (first-error-tolerant merge).
func (c *Client) forEachServer(ctx context.Context, n int, fn func(ctx context.Context, i int)) {
	ctx = c.withRetryBudget(ctx)
	fanout.ForEach(ctx, n, c.MaxConcurrency, func(ctx context.Context, i int) {
		ctx, cancel := c.perServerCtx(ctx)
		defer cancel()
		fn(ctx, i)
	})
}

// call POSTs a JSON request and decodes the response. When a resilience
// tracker is active the attempt runs through it — breaker admission,
// retries, hedging, health reporting; with no tracker it is one plain
// attempt, exactly the pre-resilience client.
func (c *Client) call(ctx context.Context, baseURL, path string, req, resp interface{}) error {
	var body []byte
	var err error
	if t := c.tracker(); t != nil {
		body, err = resilience.Do(ctx, t, baseURL, func(ctx context.Context) ([]byte, error) {
			return c.post(ctx, baseURL, path, req)
		})
	} else {
		body, err = c.post(ctx, baseURL, path, req)
	}
	if err != nil {
		return err
	}
	return json.Unmarshal(body, resp)
}

// post issues one raw HTTP attempt and returns the response body. Non-200
// responses become *resilience.HTTPError so the status code survives for
// failure classification (5xx counts against the server's health and is
// retryable; 4xx is a refusal — the server is fine).
func (c *Client) post(ctx context.Context, baseURL, path string, req interface{}) ([]byte, error) {
	c.requests.Add(1)
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, baseURL+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	httpReq.Header.Set("Content-Type", "application/json")
	if c.User != "" {
		httpReq.Header.Set("X-Flame-User", c.User)
	}
	if c.App != "" {
		httpReq.Header.Set("X-Flame-App", c.App)
	}
	res, err := c.http.Do(httpReq)
	if err != nil {
		return nil, err
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		var e wire.ErrorResponse
		_ = json.NewDecoder(res.Body).Decode(&e)
		return nil, &resilience.HTTPError{
			URL: baseURL + path, StatusCode: res.StatusCode,
			Msg: e.Error, Session: e.Session,
			RetryAfter: retryAfterHint(res, e),
		}
	}
	return io.ReadAll(res.Body)
}

// retryAfterHint extracts an overloaded server's backoff hint from a 429:
// the Retry-After header (delay-seconds form), falling back to the error
// body's retryAfterSeconds. Zero for every other response — the hint only
// means something on a shed.
func retryAfterHint(res *http.Response, e wire.ErrorResponse) time.Duration {
	if res.StatusCode != wire.StatusOverloaded {
		return 0
	}
	if raw := res.Header.Get(wire.RetryAfterHeader); raw != "" {
		if secs, err := strconv.Atoi(raw); err == nil && secs >= 0 {
			return time.Duration(secs) * time.Second
		}
	}
	if e.RetryAfterSeconds > 0 {
		return time.Duration(e.RetryAfterSeconds) * time.Second
	}
	return 0
}

// InfoV2 fetches (and caches) a server's description. Concurrent fetches
// of the same URL are coalesced into one HTTP request.
func (c *Client) InfoV2(ctx context.Context, baseURL string, opts ...CallOption) (wire.Info, error) {
	if len(opts) > 0 {
		ctx = c.withCallOpts(ctx, opts)
	}
	return c.infoCtx(ctx, baseURL)
}

// infoCtx is the Info core, running under whatever call options the
// context already carries (internal callers — route anchoring, leg
// naming — invoke it mid-call without re-resolving options).
func (c *Client) infoCtx(ctx context.Context, baseURL string) (wire.Info, error) {
	c.infoMu.Lock()
	if info, ok := c.infoCache[baseURL]; ok {
		c.infoMu.Unlock()
		return info, nil
	}
	c.infoMu.Unlock()
	fetch := func(ctx context.Context) (wire.Info, error) {
		c.requests.Add(1)
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/info", nil)
		if err != nil {
			return wire.Info{}, err
		}
		res, err := c.http.Do(req)
		if err != nil {
			return wire.Info{}, err
		}
		defer res.Body.Close()
		var info wire.Info
		if err := json.NewDecoder(res.Body).Decode(&info); err != nil {
			return wire.Info{}, err
		}
		c.infoMu.Lock()
		c.infoCache[baseURL] = info
		c.infoMu.Unlock()
		return info, nil
	}
	info, err := c.infoFlight.Do(baseURL, func() (wire.Info, error) {
		return fetch(ctx)
	})
	// The coalesced fetch ran under the leader's context; if it was the
	// leader that got cancelled while our context is live, retry directly.
	if err != nil && ctx.Err() == nil &&
		(errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
		info, err = fetch(ctx)
	}
	if err != nil {
		return wire.Info{}, err
	}
	return info, nil
}

// SearchV2 fans a location-based search out to every server discovered in
// the search region (not just at the query point: "restaurants around me"
// must reach maps the user is not standing inside) and merges the ranked
// results (§5.2). Servers that fail or deny access are skipped.
//
// The discovered servers are planned into replica groups (one request per
// group, sibling failover on error); the groups run concurrently on the
// client's bounded pool and the merge preserves the deterministic plan
// order, so concurrency does not change results. WithMaxServers bounds how
// many groups answer (the E6 recall knob); WithConsistency/WithSession
// make the read sessioned.
func (c *Client) SearchV2(ctx context.Context, query string, near geo.LatLng, limit int, opts ...CallOption) []search.Result {
	ctx = c.withCallOpts(ctx, opts)
	region := s2cell.CapRegion{Cap: geo.Cap{Center: near, RadiusMeters: c.SearchRadiusMeters}}
	anns := c.availableAnns(c.disc.DiscoverRegionCtx(ctx, region))
	groups := planAnnouncements(anns)
	// The E6 knob bounds how many federation members ANSWER: that is the
	// group count — a replica set collapses to one request, so it must
	// consume one slot of the budget, not crowd out distinct regions.
	if o := callOptsFrom(ctx); o.maxServers > 0 && len(groups) > o.maxServers {
		groups = groups[:o.maxServers]
	}
	slots := make([][]search.Result, len(groups))
	c.forEachGroup(ctx, len(groups), func(ctx context.Context, i int) {
		var resp wire.SearchResponse
		req := wire.SearchRequest{
			Query: query, Near: &near,
			MaxDistanceMeters: c.SearchRadiusMeters, Limit: limit,
		}
		if _, err := c.callGroup(ctx, groups[i], "/search", &req, &resp); err != nil {
			return
		}
		slots[i] = resp.Results
	})
	var lists [][]search.Result
	for _, l := range slots {
		if l != nil {
			lists = append(lists, l)
		}
	}
	return search.Merge(lists, limit)
}

// GeocodeV2 resolves a hierarchical address (§5.2): the coarse tail goes
// to the world provider; the specific head is asked of the fine servers
// discovered around the coarse position. The best-scoring result wins. The
// fine fan-out across discovered servers runs concurrently; the coarse
// suffix walk stays sequential (each step depends on the previous miss).
func (c *Client) GeocodeV2(ctx context.Context, address string, opts ...CallOption) (wire.GeocodeResult, error) {
	ctx = c.withCallOpts(ctx, opts)
	ctx = c.withRetryBudget(ctx) // one budget for the coarse walk + fine fan-out
	parts := geocode.ParseAddress(address)
	if len(parts) == 0 {
		return wire.GeocodeResult{}, fmt.Errorf("client: empty address")
	}
	if c.WorldURL == "" {
		return wire.GeocodeResult{}, fmt.Errorf("client: no world geocoder configured")
	}
	// Coarse: try progressively larger suffixes of the address against the
	// world provider until something matches. The coarse score is NOT
	// comparable to full-address scores (it saw fewer tokens), so it only
	// pins the location. With batching on, the whole walk — and the fine
	// full-address query the world provider would be asked next — collapses
	// into one /v1/batch round trip; otherwise (or when the provider lacks
	// the endpoint) each suffix is its own call, exactly the per-call walk.
	var coarse wire.GeocodeResult
	var worldFine *wire.GeocodeResult
	found := false
	batched := false
	if c.batchEnabled(ctx) {
		if co, cf, fine, ok := c.geocodeCoarseBatch(ctx, parts, address); ok {
			coarse, found, worldFine, batched = co, cf, fine, true
		}
	}
	worldKey := singletonKey("world", c.WorldURL)
	if !batched {
		for cut := 1; cut < len(parts)+1 && !found; cut++ {
			tail := join(parts[len(parts)-cut:])
			req := wire.GeocodeRequest{Query: tail, Limit: 1}
			var resp wire.GeocodeResponse
			if err := c.callKeyed(ctx, worldKey, c.WorldURL, "/geocode", &req, &resp); err != nil {
				return wire.GeocodeResult{}, err
			}
			if len(resp.Results) > 0 {
				coarse = resp.Results[0]
				found = true
			}
		}
	}
	if !found {
		return wire.GeocodeResult{}, fmt.Errorf("client: world geocoder found nothing for %q", address)
	}
	// Fine: ask every replica group discovered around the coarse position
	// (the world provider pinned first as its own group) for the FULL
	// address and keep the best full-address score; fall back to the coarse
	// hit.
	groups := []planGroup{{
		Key:      worldKey,
		Replicas: []discovery.Announcement{{Name: "world", URL: c.WorldURL}},
	}}
	var fine []discovery.Announcement
	for _, a := range c.availableAnns(c.disc.DiscoverCtx(ctx, coarse.Position)) {
		if a.URL != c.WorldURL {
			fine = append(fine, a)
		}
	}
	groups = append(groups, planAnnouncements(fine)...)
	slots := make([]*wire.GeocodeResult, len(groups))
	if batched {
		slots[0] = worldFine // the coarse batch already answered the world's fine query
	}
	c.forEachGroup(ctx, len(groups), func(ctx context.Context, i int) {
		if batched && i == 0 {
			return
		}
		req := wire.GeocodeRequest{Query: address, Limit: 1}
		var resp wire.GeocodeResponse
		if _, err := c.callGroup(ctx, groups[i], "/geocode", &req, &resp); err != nil {
			return
		}
		if len(resp.Results) > 0 {
			slots[i] = &resp.Results[0]
		}
	})
	// Deterministic merge in plan order: strictly-better score wins, exactly
	// as the sequential loop did.
	var best wire.GeocodeResult
	bestScore := -1.0
	for _, r := range slots {
		if r != nil && r.Score > bestScore {
			best = *r
			bestScore = r.Score
		}
	}
	if bestScore < 0 {
		return coarse, nil
	}
	return best, nil
}

func join(parts []string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += ", "
		}
		out += p
	}
	return out
}

// ReverseGeocodeV2 asks every discovered server and returns the closest
// addressable hit, fanning out to the discovered replica groups
// concurrently (one member per group, sibling failover on error).
func (c *Client) ReverseGeocodeV2(ctx context.Context, ll geo.LatLng, maxMeters float64, opts ...CallOption) (wire.GeocodeResult, bool) {
	ctx = c.withCallOpts(ctx, opts)
	groups := planAnnouncements(c.availableAnns(c.disc.DiscoverCtx(ctx, ll)))
	slots := make([]*wire.GeocodeResult, len(groups))
	c.forEachGroup(ctx, len(groups), func(ctx context.Context, i int) {
		req := wire.RGeocodeRequest{Position: ll, MaxMeters: maxMeters}
		var resp wire.RGeocodeResponse
		if _, err := c.callGroup(ctx, groups[i], "/rgeocode", &req, &resp); err != nil {
			return
		}
		if resp.Found {
			r := resp.Result
			slots[i] = &r
		}
	})
	bestD := maxMeters
	var best wire.GeocodeResult
	found := false
	for _, r := range slots {
		if r == nil {
			continue
		}
		if d := geo.DistanceMeters(ll, r.Position); !found || d < bestD {
			best, bestD, found = *r, d, true
		}
	}
	return best, found
}

// LocalizeV2 sends the cues to every discovered server advertising a
// matching technology and picks the most plausible fix against the prior
// (§5.2). priorSigma <= 0 disables the prior. Every (replica group, cue)
// pair whose technology matches becomes one concurrent call on the bounded
// pool — one replica answers per group, siblings covering for it on error.
func (c *Client) LocalizeV2(ctx context.Context, coarse geo.LatLng, cues []loc.Cue, prior geo.LatLng, priorSigmaMeters float64, opts ...CallOption) (loc.Fix, bool) {
	ctx = c.withCallOpts(ctx, opts)
	// The coarse position may be off by its own sigma (indoor GPS);
	// discover over a cap so the right map is found anyway — at the cost
	// of sometimes reaching "unrelated maps" the selection step rejects
	// (§5.2).
	radius := 2 * priorSigmaMeters
	if radius < 60 {
		radius = 60
	}
	anns := c.availableAnns(c.disc.DiscoverRegionCtx(ctx, s2cell.CapRegion{Cap: geo.Cap{Center: coarse, RadiusMeters: radius}}))
	// Flatten to (group, cue) calls first so the pool sees them all. A
	// replica advertising no technology for the cue is skipped within its
	// group; a group with no matching member contributes no call.
	type callSpec struct {
		group planGroup
		cue   loc.Cue
	}
	var specs []callSpec
	for _, g := range planAnnouncements(anns) {
		for _, cue := range cues {
			sub := planGroup{Key: g.Key}
			for _, a := range g.Replicas {
				if len(a.Technologies) > 0 && !hasTechnology(a.Technologies, cue.Technology) {
					continue
				}
				sub.Replicas = append(sub.Replicas, a)
			}
			if len(sub.Replicas) == 0 {
				continue
			}
			specs = append(specs, callSpec{group: sub, cue: cue})
		}
	}
	slots := make([]*loc.Fix, len(specs))
	c.forEachGroup(ctx, len(specs), func(ctx context.Context, i int) {
		req := wire.LocalizeRequest{Cue: specs[i].cue}
		var resp wire.LocalizeResponse
		if _, err := c.callGroup(ctx, specs[i].group, "/localize", &req, &resp); err != nil {
			return
		}
		if resp.Found {
			f := resp.Fix
			slots[i] = &f
		}
	})
	var fixes []loc.Fix
	for _, f := range slots {
		if f != nil {
			fixes = append(fixes, *f)
		}
	}
	return SelectBestWorld(fixes, prior, priorSigmaMeters)
}

func hasTechnology(ts []loc.Technology, t loc.Technology) bool {
	for _, have := range ts {
		if have == t {
			return true
		}
	}
	return false
}

// SelectBestWorld picks the most plausible fix by confidence weighted with
// agreement to a world-frame prior.
func SelectBestWorld(fixes []loc.Fix, prior geo.LatLng, priorSigmaMeters float64) (loc.Fix, bool) {
	if len(fixes) == 0 {
		return loc.Fix{}, false
	}
	bestIdx := -1
	bestScore := -1.0
	for i, f := range fixes {
		score := f.Confidence
		if priorSigmaMeters > 0 {
			sigma := priorSigmaMeters + f.SigmaMeters + 1
			d := geo.DistanceMeters(f.World, prior)
			score *= gaussian(d, sigma)
		}
		if score > bestScore {
			bestScore, bestIdx = score, i
		}
	}
	return fixes[bestIdx], true
}

func gaussian(d, sigma float64) float64 {
	x := d / sigma
	return math.Exp(-x * x / 2)
}

// TilePNGV2 fetches one tile from a server. Tiles are content-addressed
// (ETag revalidation) rather than session-marked; consistency options are
// accepted for uniformity but impose nothing.
func (c *Client) TilePNGV2(ctx context.Context, baseURL string, z, x, y int, opts ...CallOption) ([]byte, error) {
	if len(opts) > 0 {
		ctx = c.withCallOpts(ctx, opts)
	}
	c.requests.Add(1)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, fmt.Sprintf("%s/tiles/%d/%d/%d.png", baseURL, z, x, y), nil)
	if err != nil {
		return nil, err
	}
	if c.User != "" {
		req.Header.Set("X-Flame-User", c.User)
	}
	if c.App != "" {
		req.Header.Set("X-Flame-App", c.App)
	}
	res, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("client: tile status %d", res.StatusCode)
	}
	return io.ReadAll(res.Body)
}
