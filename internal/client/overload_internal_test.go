package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"openflame/internal/resilience"
	"openflame/internal/wire"
)

// shedServer answers every POST with a 429 shaped exactly like
// mapserver's admission shed: JSON error body plus a Retry-After header.
func shedServer(t *testing.T, header string, bodySeconds int) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if header != "" {
			w.Header().Set(wire.RetryAfterHeader, header)
		}
		w.WriteHeader(wire.StatusOverloaded)
		body := `{"error":"server overloaded"`
		if bodySeconds > 0 {
			body = `{"error":"server overloaded","retryAfterSeconds":3`
		}
		_, _ = w.Write([]byte(body + "}"))
	}))
	t.Cleanup(ts.Close)
	return ts
}

// TestPostSurfacesRetryAfterOnShed pins the wire contract the resilience
// layer builds on: a 429 arrives at Classify as an HTTPError carrying the
// server's Retry-After, from the header when present, from the body hint
// when not.
func TestPostSurfacesRetryAfterOnShed(t *testing.T) {
	cases := []struct {
		name        string
		header      string
		bodySeconds int
		want        time.Duration
	}{
		{"header wins", "2", 3, 2 * time.Second},
		{"body fallback", "", 3, 3 * time.Second},
		{"garbage header falls back", "soon", 3, 3 * time.Second},
		{"no hint at all", "", 0, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ts := shedServer(t, tc.header, tc.bodySeconds)
			c := New(nil, ts.Client())
			_, err := c.post(context.Background(), ts.URL, "/search", wire.SearchRequest{Query: "x"})
			var he *resilience.HTTPError
			if !errors.As(err, &he) {
				t.Fatalf("post error = %v, want *resilience.HTTPError", err)
			}
			if he.StatusCode != wire.StatusOverloaded {
				t.Fatalf("status = %d, want %d", he.StatusCode, wire.StatusOverloaded)
			}
			if he.RetryAfter != tc.want {
				t.Fatalf("RetryAfter = %v, want %v", he.RetryAfter, tc.want)
			}
			if got := resilience.Classify(context.Background(), he); got != resilience.ClassOverload {
				t.Fatalf("Classify = %v, want overload", got)
			}
		})
	}
}
