package client_test

import (
	"math/rand"
	"testing"

	"openflame/internal/core"
	"openflame/internal/geo"
	"openflame/internal/loc"
	"openflame/internal/worldgen"
)

// fixtureCue synthesizes an RSSI cue for a point inside the store.
func fixtureCue(t *testing.T, store *worldgen.IndoorBundle) []loc.Cue {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	return []loc.Cue{loc.SynthesizeRSSICue(geo.Point{X: 4, Y: 8}, store.Beacons,
		loc.DefaultRadioModel(), rng)}
}

// Federation members fail independently; the client must degrade, not die
// — the isolation benefit §1 claims for federated designs.

func TestSearchSurvivesDeadStoreServer(t *testing.T) {
	w := worldgen.GenWorld(worldgen.DefaultWorldParams())
	f, err := core.DeployWorld(w)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	store := w.Stores[0]
	entrance := trueEntrance(store)

	// Kill a different store's server; search near store 0 still works.
	other := f.FindServer("world-map")
	for _, h := range f.Servers {
		if h.Server.Name() != "world-map" && h.Server != f.Servers[0].Server {
			other = h
		}
	}
	other.HTTP.Close()

	c := f.NewClient()
	if got := c.Search(store.Products[0], entrance, 10); len(got) == 0 {
		t.Fatal("search failed with an unrelated server down")
	}
}

func TestSearchDegradesWhenTargetStoreDies(t *testing.T) {
	w := worldgen.GenWorld(worldgen.DefaultWorldParams())
	f, err := core.DeployWorld(w)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	store := w.Stores[0]
	entrance := trueEntrance(store)
	product := store.Products[0]

	c := f.NewClient()
	before := c.Search(product, entrance, 10)
	if len(before) == 0 {
		t.Fatal("setup: product not found")
	}

	// Kill the store that owns the shelf: its hits disappear, but the
	// client still returns (the world map's own results, possibly empty).
	name := store.PortalID[len("portal-"):]
	h := f.FindServer(name)
	if h == nil {
		t.Fatalf("server %q missing", name)
	}
	h.HTTP.Close()

	c2 := f.NewClient()
	after := c2.Search(product, entrance, 10)
	for _, r := range after {
		if r.Source == name {
			t.Fatalf("dead server %q produced result %+v", name, r)
		}
	}
}

func TestRouteSurvivesUnrelatedServerDown(t *testing.T) {
	w := worldgen.GenWorld(worldgen.DefaultWorldParams())
	f, err := core.DeployWorld(w)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	// Kill store 1's server; an outdoor route (world-map only) still works.
	victim := w.Stores[1].PortalID[len("portal-"):]
	if h := f.FindServer(victim); h != nil {
		h.HTTP.Close()
	}
	c := f.NewClient()
	from := geo.LatLng{Lat: 40.4400, Lng: -79.9990}
	to := geo.Offset(geo.Offset(from, 300, 0), 300, 90)
	route, err := c.Route(from, to)
	if err != nil {
		t.Fatalf("outdoor route failed with store server down: %v", err)
	}
	if route.ServersUsed != 1 {
		t.Fatalf("servers used = %d", route.ServersUsed)
	}
}

func TestLocalizeSurvivesPartialFailures(t *testing.T) {
	w := worldgen.GenWorld(worldgen.DefaultWorldParams())
	f, err := core.DeployWorld(w)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	// With the world-map down (it offers no fingerprints anyway), indoor
	// localization still resolves through the store.
	f.FindServer("world-map").HTTP.Close()
	store := w.Stores[0]
	entrance := trueEntrance(store)
	c := f.NewClient()
	cue := fixtureCue(t, store)
	if _, ok := c.Localize(entrance, cue, entrance, 35); !ok {
		t.Fatal("localization failed with world map down")
	}
}
