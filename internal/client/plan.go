package client

import (
	"context"
	"fmt"
	"reflect"

	"openflame/internal/discovery"
	"openflame/internal/fanout"
)

// planGroup is one unit of a fan-out plan: a set of replica announcements
// that serve identical content for the same region. The client contacts ONE
// member per group, failing over to siblings on error — N replicas of a hot
// region cost one request and gain N× capacity, instead of costing N
// requests whose answers dedup to one.
type planGroup struct {
	// Key identifies the group: the announcements' replica-set id, or a
	// synthetic singleton key for servers announcing no set.
	Key string
	// Replicas holds the group's members in deterministic discovery order.
	Replicas []discovery.Announcement
}

// planAnnouncements groups announcements into a fan-out plan: members of
// the same replica set collapse into one group; servers without a set are
// singleton groups of their own. Groups appear in first-appearance order of
// the input (which discovery already makes deterministic), so with no
// replica sets in play the plan is exactly the pre-plan fan-out list —
// request-for-request identical. Duplicate (name, URL) entries are dropped.
func planAnnouncements(anns []discovery.Announcement) []planGroup {
	type nameURL struct{ name, url string }
	seen := make(map[nameURL]bool, len(anns))
	index := make(map[string]int)
	var groups []planGroup
	for _, a := range anns {
		nu := nameURL{a.Name, a.URL}
		if seen[nu] {
			continue
		}
		seen[nu] = true
		key := a.ReplicaSet
		if key == "" {
			key = singletonKey(a.Name, a.URL)
		}
		if i, ok := index[key]; ok {
			groups[i].Replicas = append(groups[i].Replicas, a)
			continue
		}
		index[key] = len(groups)
		groups = append(groups, planGroup{Key: key, Replicas: []discovery.Announcement{a}})
	}
	return groups
}

// singletonKey is the group key of a server that announced no replica set
// (the NUL prefix cannot collide with an operator-chosen set id).
func singletonKey(name, url string) string {
	return "\x00" + name + "\x00" + url
}

// orderedReplicas returns the group's members in contact-preference order:
// members whose circuit breaker is open are excluded outright (they rejoin
// via half-open probes), the rest sort by tracked EWMA latency ascending —
// so steady-state traffic flows to the fastest healthy replica, and a
// replica with no samples yet (EWMA 0) is probed before slower known ones.
// The sort is stable, so ties (and the no-tracker case) preserve discovery
// order, keeping plans deterministic.
func (c *Client) orderedReplicas(g planGroup) []discovery.Announcement {
	out := make([]discovery.Announcement, 0, len(g.Replicas))
	for _, a := range g.Replicas {
		if c.available(a.URL) {
			out = append(out, a)
		}
	}
	t := c.tracker()
	if t == nil || len(out) < 2 {
		return out
	}
	// Insertion sort: replica sets are small and stability matters.
	lat := make(map[string]int64, len(out))
	for _, a := range out {
		lat[a.URL] = int64(t.Health(a.URL).EWMALatency)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && lat[out[j].URL] < lat[out[j-1].URL]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// errGroupExhausted reports a group whose every eligible replica failed.
type errGroupExhausted struct {
	key  string
	last error
}

func (e *errGroupExhausted) Error() string {
	if e.last == nil {
		return fmt.Sprintf("client: no eligible replica in group %q", e.key)
	}
	return fmt.Sprintf("client: all replicas of group %q failed: %v", e.key, e.last)
}

func (e *errGroupExhausted) Unwrap() error { return e.last }

// callGroup issues one logical request to a replica group: the preferred
// replica first, failing over to each sibling in order until one answers.
// Each attempt gets its own per-server timeout (a replica that burned its
// window must not leave the sibling with an expired context) and runs
// through the resilience layer like any other call. Sessioned calls carry
// the group's consistency mark, so a member lagging behind what this
// session has already observed refuses (wire.StatusStaleReplica) and the
// failover loop moves on to a sibling that can honor the mark. On success
// the answering replica is returned; resp holds its decoded response.
func (c *Client) callGroup(ctx context.Context, g planGroup, path string, req, resp interface{}) (discovery.Announcement, error) {
	var lastErr error
	first := true
	for _, a := range c.orderedReplicas(g) {
		if ctx.Err() != nil {
			return discovery.Announcement{}, ctx.Err()
		}
		if !first {
			// A failed attempt may have partially decoded into resp (a 200
			// with a corrupt body); zero it so the sibling's answer cannot
			// inherit fields the failure left behind.
			if v := reflect.ValueOf(resp); v.Kind() == reflect.Pointer && !v.IsNil() {
				v.Elem().Set(reflect.Zero(v.Elem().Type()))
			}
		}
		first = false
		actx, cancel := c.perServerCtx(ctx)
		err := c.callKeyed(actx, g.Key, a.URL, path, req, resp)
		cancel()
		if err == nil {
			return a, nil
		}
		lastErr = err
	}
	return discovery.Announcement{}, &errGroupExhausted{key: g.Key, last: lastErr}
}

// forEachGroup runs fn over the plan's groups on the client's bounded
// worker pool. Unlike forEachServer it does NOT wrap fn in a per-server
// timeout — fn is expected to call callGroup, which budgets each failover
// attempt separately.
func (c *Client) forEachGroup(ctx context.Context, n int, fn func(ctx context.Context, i int)) {
	ctx = c.withRetryBudget(ctx)
	fanout.ForEach(ctx, n, c.MaxConcurrency, fn)
}
