// Package resilience is the client-side reliability layer for federation
// fan-out: per-server health tracking (EWMA latency, a p95 window,
// consecutive-failure counts), a circuit breaker (closed → open → half-open
// with probe requests), a retry policy with per-request budgets and
// jittered exponential backoff, and hedged requests (a second attempt
// spawned once a call outlives the server's tracked p95, first response
// wins, loser cancelled through its context).
//
// The paper's isolation claim — "a slow or failed federation member is
// skipped, not waited on" (§1) — needs more than dropping a failed server
// for one request: a member that is *persistently* down must stop being
// contacted at all (breaker), a member that failed *transiently* should be
// retried within a budget, and a member that is merely *slow this once*
// should be raced against a hedge instead of dragging the whole merge to
// its tail. All decisions are local to the client; servers are untouched.
//
// Time is injectable (Now, Sleep, Jitter) so breaker and backoff state
// transitions can be driven deterministically by tests — no sleeps as
// synchronization. The one real-time element is the hedge-spawn timer;
// hedging tests therefore assert on outcomes (winner, request counts,
// cancellation) rather than timings.
package resilience

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"
)

// State is a circuit breaker state.
type State int

const (
	// StateClosed admits every call (the healthy default).
	StateClosed State = iota
	// StateHalfOpen admits a single probe call after the cooldown; its
	// outcome decides between StateClosed and StateOpen.
	StateHalfOpen
	// StateOpen rejects calls locally until the cooldown elapses.
	StateOpen
)

func (s State) String() string {
	switch s {
	case StateClosed:
		return "closed"
	case StateHalfOpen:
		return "half-open"
	case StateOpen:
		return "open"
	}
	return fmt.Sprintf("State(%d)", int(s))
}

// RetryPolicy bounds re-attempts of transient per-server failures.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts per server call;
	// values <= 1 disable retries.
	MaxAttempts int
	// BaseBackoff is the delay before the first retry (default 10ms);
	// it doubles per attempt and is jittered to avoid synchronized
	// retry storms.
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth (default 1s).
	MaxBackoff time.Duration
	// Budget, when > 0, caps the total number of retries one logical
	// client request may spend across all its servers (attached to the
	// fan-out context with WithBudget); a few bad members must not
	// multiply the request's cost by MaxAttempts.
	Budget int
}

// Policy collects the resilience knobs. The zero value disables every
// mechanism (calls pass through untouched, health is still tracked).
type Policy struct {
	Retry RetryPolicy
	// HedgeAfter, when > 0, enables hedged requests: if an attempt has
	// not answered after this long, a second attempt races it and the
	// first response wins. Once a server has enough latency samples the
	// delay adapts downward to its tracked p95; HedgeAfter stays the
	// upper bound.
	HedgeAfter time.Duration
	// BreakerThreshold, when > 0, opens a server's circuit after that
	// many consecutive transient failures.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker waits before admitting
	// a half-open probe (default 5s).
	BreakerCooldown time.Duration
}

// Enabled reports whether any mechanism beyond health tracking is active.
func (p Policy) Enabled() bool {
	return p.Retry.MaxAttempts > 1 || p.HedgeAfter > 0 || p.BreakerThreshold > 0
}

// Health is a point-in-time snapshot of one server's tracked state.
type Health struct {
	// EWMALatency is the exponentially-weighted moving average of
	// successful call latencies (alpha 0.2).
	EWMALatency time.Duration
	// P95Latency is the 95th percentile over the recent sample window
	// (zero until the window has samples).
	P95Latency time.Duration
	// ConsecutiveFailures counts transient failures since the last
	// success (caller cancellations do not count).
	ConsecutiveFailures int
	// Successes and Failures are lifetime counters.
	Successes, Failures int64
	// State is the breaker state.
	State State
}

// Stats aggregates tracker-wide counters for experiments.
type Stats struct {
	Retries int64 // backoff-delayed re-attempts issued
	Hedges  int64 // hedge attempts spawned
	Trips   int64 // breaker closed/half-open → open transitions
	Rejects int64 // calls rejected locally by an open breaker
	Sheds   int64 // 429 overload refusals received from servers
}

const (
	ewmaAlpha       = 0.2
	sampleWindow    = 64 // recent latencies kept per server for p95
	hedgeMinSamples = 16 // samples before the hedge delay adapts to p95
	defaultBackoff  = 10 * time.Millisecond
	defaultMaxBack  = time.Second
	defaultCooldown = 5 * time.Second
)

// Tracker owns per-server health state and applies a Policy to calls run
// through Do. Safe for concurrent use. Create with NewTracker.
type Tracker struct {
	Policy

	// Now, Sleep and Jitter are injectable for deterministic tests.
	// Now defaults to time.Now. Sleep defaults to a context-aware
	// timer sleep. Jitter defaults to uniform [d/2, d).
	Now    func() time.Time
	Sleep  func(ctx context.Context, d time.Duration) error
	Jitter func(d time.Duration) time.Duration

	mu      sync.Mutex
	servers map[string]*serverState
	rng     *rand.Rand
	stats   Stats
}

// serverState is one server's tracked health; guarded by Tracker.mu.
type serverState struct {
	ewma        time.Duration
	samples     [sampleWindow]time.Duration
	sampleIdx   int
	sampleCount int
	p95Cache    time.Duration // memoized p95; valid while !p95Dirty
	p95Dirty    bool
	consecFails int
	successes   int64
	failures    int64
	state       State
	openedAt    time.Time
	probing     bool // a half-open probe is in flight
}

// NewTracker creates a tracker for the policy.
func NewTracker(p Policy) *Tracker {
	return &Tracker{
		Policy:  p,
		servers: make(map[string]*serverState),
		rng:     rand.New(rand.NewSource(time.Now().UnixNano())),
	}
}

func (t *Tracker) now() time.Time {
	if t.Now != nil {
		return t.Now()
	}
	return time.Now()
}

func (t *Tracker) state(server string) *serverState {
	s, ok := t.servers[server]
	if !ok {
		s = &serverState{}
		t.servers[server] = s
	}
	return s
}

// Available reports whether the server should be included in a fan-out:
// false only while its breaker is open and the cooldown has not elapsed.
// Half-open servers stay in the fan-out — Do admits exactly one probe and
// rejects the rest, so one fan-out cannot stampede a recovering member.
func (t *Tracker) Available(server string) bool {
	if t.BreakerThreshold <= 0 {
		return true
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s, ok := t.servers[server]
	if !ok || s.state != StateOpen {
		return true
	}
	return t.now().Sub(s.openedAt) >= t.cooldown()
}

// Health returns a snapshot of the server's tracked health.
func (t *Tracker) Health(server string) Health {
	t.mu.Lock()
	defer t.mu.Unlock()
	s, ok := t.servers[server]
	if !ok {
		return Health{}
	}
	return Health{
		EWMALatency:         s.ewma,
		P95Latency:          s.p95Locked(),
		ConsecutiveFailures: s.consecFails,
		Successes:           s.successes,
		Failures:            s.failures,
		State:               s.state,
	}
}

// Stats returns tracker-wide counters.
func (t *Tracker) Stats() Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stats
}

func (t *Tracker) cooldown() time.Duration {
	if t.BreakerCooldown > 0 {
		return t.BreakerCooldown
	}
	return defaultCooldown
}

// admit decides whether a call to the server may proceed, transitioning an
// open breaker whose cooldown elapsed to half-open. probe reports that the
// admitted call is the half-open probe whose outcome settles the breaker.
func (t *Tracker) admit(server string) (ok, probe bool) {
	if t.BreakerThreshold <= 0 {
		return true, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.state(server)
	switch s.state {
	case StateClosed:
		return true, false
	case StateOpen:
		if t.now().Sub(s.openedAt) < t.cooldown() {
			t.stats.Rejects++
			return false, false
		}
		s.state = StateHalfOpen
		s.probing = true
		return true, true
	case StateHalfOpen:
		if s.probing {
			t.stats.Rejects++
			return false, false
		}
		s.probing = true
		return true, true
	}
	return true, false
}

// reportSuccess records a successful call's latency and closes the breaker.
func (t *Tracker) reportSuccess(server string, latency time.Duration, probe bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.state(server)
	s.successes++
	s.consecFails = 0
	if s.ewma == 0 {
		s.ewma = latency
	} else {
		s.ewma += time.Duration(ewmaAlpha * float64(latency-s.ewma))
	}
	s.samples[s.sampleIdx] = latency
	s.sampleIdx = (s.sampleIdx + 1) % sampleWindow
	if s.sampleCount < sampleWindow {
		s.sampleCount++
	}
	s.p95Dirty = true
	if probe {
		s.probing = false
	}
	s.closeLocked(probe)
}

// closeLocked closes the breaker on a positive signal — but only from
// CLOSED (no-op) or via the half-open probe's verdict. A stale in-flight
// call admitted before the breaker tripped may complete successfully
// later; it must not silently reopen a circuit that threshold-many fresh
// failures just proved broken. The caller holds t.mu.
func (s *serverState) closeLocked(probe bool) {
	switch s.state {
	case StateHalfOpen:
		if probe {
			s.state = StateClosed
		}
	case StateOpen:
		// Ignore: only the half-open probe may close an open circuit.
	}
}

// reportFailure records a transient failure, tripping the breaker at the
// threshold and re-opening it when a half-open probe fails.
func (t *Tracker) reportFailure(server string, probe bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.state(server)
	s.failures++
	s.consecFails++
	if probe {
		s.probing = false
	}
	if t.BreakerThreshold <= 0 {
		return
	}
	if s.state == StateHalfOpen || s.consecFails >= t.BreakerThreshold {
		if s.state != StateOpen {
			t.stats.Trips++
		}
		s.state = StateOpen
		s.openedAt = t.now()
	}
}

// reportRefusal records a definitive 4xx answer: proof of liveness (it
// resets the failure streak and closes a probing breaker) but not a
// success — refusal latencies must not feed the hedge window, and
// Successes counts only calls that produced data.
func (t *Tracker) reportRefusal(server string, probe bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.state(server)
	s.consecFails = 0
	if probe {
		s.probing = false
	}
	s.closeLocked(probe)
}

// reportShed records a 429 overload refusal: a liveness signal exactly
// like a 4xx refusal (the server answered, fast, on purpose), so the
// failure streak resets and a probing breaker closes — a shed server sheds
// load to its siblings WITHOUT being marked dead. Only the Sheds counter
// distinguishes it, for experiments and operators.
func (t *Tracker) reportShed(server string, probe bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.stats.Sheds++
	s := t.state(server)
	s.consecFails = 0
	if probe {
		s.probing = false
	}
	s.closeLocked(probe)
}

// reportCancelled releases a probe slot without a health verdict: the
// caller went away, which says nothing about the server.
func (t *Tracker) reportCancelled(server string, probe bool) {
	if !probe {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.state(server)
	if s.probing {
		s.probing = false
	}
}

// p95Locked returns the 95th percentile of the sample window, memoized so
// repeated reads (hedge delay per attempt, Health snapshots) between
// inserts cost O(1); the caller holds t.mu.
func (s *serverState) p95Locked() time.Duration {
	if s.sampleCount == 0 {
		return 0
	}
	if !s.p95Dirty {
		return s.p95Cache
	}
	buf := make([]time.Duration, s.sampleCount)
	copy(buf, s.samples[:s.sampleCount])
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	idx := s.sampleCount * 95 / 100
	if idx >= s.sampleCount {
		idx = s.sampleCount - 1
	}
	s.p95Cache = buf[idx]
	s.p95Dirty = false
	return s.p95Cache
}

// hedgeDelay returns how long to wait before spawning a hedge attempt for
// the server (0 = hedging off): the tracked p95 once the window is warm,
// capped at the HedgeAfter knob. The cap matters beyond being a cold-start
// default — hedged wins feed their own (delay + service time) latency back
// into the window, so an uncapped p95 would ratchet the delay upward after
// every rescue; HedgeAfter bounds the loop, and the p95 can only make
// hedging fire sooner.
func (t *Tracker) hedgeDelay(server string) time.Duration {
	if t.HedgeAfter <= 0 {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s, ok := t.servers[server]
	if !ok || s.sampleCount < hedgeMinSamples {
		return t.HedgeAfter
	}
	if p95 := s.p95Locked(); p95 > 0 && p95 < t.HedgeAfter {
		return p95
	}
	return t.HedgeAfter
}

// recordHedge counts a spawned hedge attempt.
func (t *Tracker) recordHedge() {
	t.mu.Lock()
	t.stats.Hedges++
	t.mu.Unlock()
}

// recordRetry counts a backoff-delayed re-attempt.
func (t *Tracker) recordRetry() {
	t.mu.Lock()
	t.stats.Retries++
	t.mu.Unlock()
}

// backoff sleeps the jittered exponential delay before retry attempt n
// (1-based), honoring ctx. floor, when > 0, is a server-provided lower
// bound (a 429's Retry-After): the jittered delay is raised to it, never
// cut below it — the overloaded server's own estimate of when capacity
// returns outranks the client's exponential schedule.
func (t *Tracker) backoff(ctx context.Context, n int, floor time.Duration) error {
	base := t.Retry.BaseBackoff
	if base <= 0 {
		base = defaultBackoff
	}
	max := t.Retry.MaxBackoff
	if max <= 0 {
		max = defaultMaxBack
	}
	d := base << (n - 1)
	if d <= 0 || d > max {
		d = max
	}
	if t.Jitter != nil {
		d = t.Jitter(d)
	} else {
		t.mu.Lock()
		f := 0.5 + 0.5*t.rng.Float64()
		t.mu.Unlock()
		d = time.Duration(float64(d) * f)
	}
	if d < floor {
		d = floor
	}
	if t.Sleep != nil {
		return t.Sleep(ctx, d)
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
