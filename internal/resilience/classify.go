package resilience

import (
	"context"
	"errors"
	"fmt"
	"time"

	"openflame/internal/wire"
)

// Class is a failure classification: it decides both whether an error is a
// health signal against the server and whether retrying can help.
type Class int

const (
	// ClassOK: the call succeeded.
	ClassOK Class = iota
	// ClassCancelled: the caller gave up (context cancellation). Says
	// nothing about the server — not counted against health, not retried.
	ClassCancelled
	// ClassTransient: the server or the path to it failed (5xx, timeout,
	// transport error). Counted against health; retryable.
	ClassTransient
	// ClassPermanent: the server answered with a definitive refusal
	// (4xx: bad request, policy denial). The server is healthy; not
	// counted against it, and retrying the same request cannot help.
	ClassPermanent
	// ClassOverload: the server shed the request (429 Too Many Requests).
	// Proof of liveness — an overloaded member answering refusals in
	// microseconds is the OPPOSITE of a dead one, so it must never trip the
	// breaker or feed failure counts (that would convert a load spike into
	// a mass ejection from the fan-out). Retryable, but only after the
	// server's Retry-After hint; in a replicated fan-out the caller fails
	// over to a sibling first.
	ClassOverload
)

func (c Class) String() string {
	switch c {
	case ClassOK:
		return "ok"
	case ClassCancelled:
		return "cancelled"
	case ClassTransient:
		return "transient"
	case ClassPermanent:
		return "permanent"
	case ClassOverload:
		return "overload"
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// HTTPError is a non-200 response, preserved with its status code so the
// classification can distinguish server faults (5xx) from refusals (4xx).
type HTTPError struct {
	URL        string
	StatusCode int
	Msg        string
	// Session is the refusing server's current session mark, when the
	// error body carried one (stale-replica refusals do) — the client's
	// session layer uses it to heal marks from dead log incarnations.
	Session *wire.SessionMark
	// RetryAfter is the server's backoff hint on a 429 shed response
	// (from the Retry-After header or the error body), used as the FLOOR
	// of the retry backoff: the server said when capacity might exist;
	// retrying sooner only deepens the overload.
	RetryAfter time.Duration
}

func (e *HTTPError) Error() string {
	return fmt.Sprintf("%s: status %d: %s", e.URL, e.StatusCode, e.Msg)
}

// OpenError is a call rejected locally because the server's breaker is
// open; no HTTP was issued.
type OpenError struct{ Server string }

func (e *OpenError) Error() string {
	return fmt.Sprintf("resilience: breaker open for %s", e.Server)
}

// Classify maps a call error to its Class. ctx is the context the call ran
// under: when it carries a cancellation the failure is charged to the
// caller, not the server. Deadline expiry (a per-server timeout firing) IS
// charged to the server — a member that cannot answer within its deadline
// is indistinguishable from a failed one (§1's isolation argument), while
// a user pressing Ctrl-C says nothing about server health.
func Classify(ctx context.Context, err error) Class {
	if err == nil {
		return ClassOK
	}
	if ctx != nil && ctx.Err() == context.Canceled {
		return ClassCancelled
	}
	if errors.Is(err, context.Canceled) {
		return ClassCancelled
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return ClassTransient
	}
	var he *HTTPError
	if errors.As(err, &he) {
		if he.StatusCode >= 500 {
			return ClassTransient
		}
		if he.StatusCode == wire.StatusOverloaded {
			return ClassOverload
		}
		return ClassPermanent
	}
	var oe *OpenError
	if errors.As(err, &oe) {
		// Local rejection: already accounted for when the breaker tripped.
		return ClassPermanent
	}
	// Anything else is transport-level (connection refused/reset, DNS):
	// the member is unreachable, which is what the breaker exists for.
	return ClassTransient
}
