package resilience

import (
	"context"
	"testing"
	"time"

	"openflame/internal/wire"
)

func overloadErr(retryAfter time.Duration) error {
	return &HTTPError{
		URL:        "http://srv/route",
		StatusCode: wire.StatusOverloaded,
		Msg:        "server overloaded",
		RetryAfter: retryAfter,
	}
}

func TestClassifyOverload(t *testing.T) {
	if got := Classify(context.Background(), overloadErr(time.Second)); got != ClassOverload {
		t.Fatalf("Classify(429) = %v, want %v", got, ClassOverload)
	}
	if got := ClassOverload.String(); got != "overload" {
		t.Fatalf("ClassOverload.String() = %q", got)
	}
	// 429 without the typed error (e.g. a proxy) must not be mistaken for
	// overload by message sniffing: only the status code decides.
	if got := Classify(context.Background(), httpErr(503)); got != ClassTransient {
		t.Fatalf("Classify(503) = %v, want transient", got)
	}
}

// TestOverloadRetriesWithRetryAfterFloor pins the backoff contract: a shed
// is retryable, and the server's Retry-After is a FLOOR under the
// exponential backoff — the client never comes back sooner than the server
// asked, even when its own schedule would.
func TestOverloadRetriesWithRetryAfterFloor(t *testing.T) {
	tr, _, slept := testTracker(Policy{Retry: RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Millisecond}})
	attempts := 0
	v, err := Do(context.Background(), tr, "srv", func(ctx context.Context) (string, error) {
		attempts++
		if attempts == 1 {
			return "", overloadErr(750 * time.Millisecond)
		}
		return "ok", nil
	})
	if err != nil || v != "ok" {
		t.Fatalf("Do = %q, %v", v, err)
	}
	if attempts != 2 {
		t.Fatalf("attempts = %d, want 2", attempts)
	}
	if len(*slept) != 1 || (*slept)[0] != 750*time.Millisecond {
		t.Fatalf("backoffs = %v, want the 750ms Retry-After floor over the 1ms base", *slept)
	}
	if got := tr.Stats().Sheds; got != 1 {
		t.Fatalf("Stats.Sheds = %d, want 1", got)
	}
}

// TestOverloadWithoutHintUsesOwnBackoff: a shed carrying no Retry-After
// falls back to the client's own exponential schedule.
func TestOverloadWithoutHintUsesOwnBackoff(t *testing.T) {
	tr, _, slept := testTracker(Policy{Retry: RetryPolicy{MaxAttempts: 2, BaseBackoff: 10 * time.Millisecond}})
	_, _ = Do(context.Background(), tr, "srv", func(ctx context.Context) (string, error) {
		return "", overloadErr(0)
	})
	if len(*slept) != 1 || (*slept)[0] != 10*time.Millisecond {
		t.Fatalf("backoffs = %v, want [10ms]", *slept)
	}
}

// TestOverloadNeverTripsBreaker is the tentpole's client-side half: a 429
// is a LIVENESS PROOF (the server answered, fast, by design), so no number
// of consecutive sheds may open the breaker or poison health — marking an
// overloaded-but-alive server dead would amplify the overload onto its
// siblings.
func TestOverloadNeverTripsBreaker(t *testing.T) {
	tr, _, _ := testTracker(Policy{
		Retry:            RetryPolicy{MaxAttempts: 1},
		BreakerThreshold: 3,
	})
	for i := 0; i < 10; i++ {
		if _, err := Do(context.Background(), tr, "srv", func(ctx context.Context) (string, error) {
			return "", overloadErr(time.Second)
		}); err == nil {
			t.Fatal("shed attempt reported success")
		}
	}
	h := tr.Health("srv")
	if h.State != StateClosed {
		t.Fatalf("breaker %v after 10 consecutive sheds, want closed", h.State)
	}
	if h.ConsecutiveFailures != 0 {
		t.Fatalf("consecutive failures = %d after sheds, want 0", h.ConsecutiveFailures)
	}
	if !tr.Available("srv") {
		t.Fatal("server marked unavailable by sheds")
	}
	if got := tr.Stats().Sheds; got != 10 {
		t.Fatalf("Stats.Sheds = %d, want 10", got)
	}
}

// TestOverloadClosesHalfOpenBreaker: a shed received on a half-open probe
// closes the breaker — the server is demonstrably alive, just busy.
func TestOverloadClosesHalfOpenBreaker(t *testing.T) {
	tr, clk, _ := testTracker(Policy{
		Retry:            RetryPolicy{MaxAttempts: 1},
		BreakerThreshold: 2,
		BreakerCooldown:  time.Second,
	})
	for i := 0; i < 2; i++ {
		_, _ = Do(context.Background(), tr, "srv", func(ctx context.Context) (string, error) {
			return "", httpErr(503)
		})
	}
	if got := tr.Health("srv").State; got != StateOpen {
		t.Fatalf("breaker %v after threshold transient failures, want open", got)
	}
	clk.Advance(2 * time.Second)
	if _, err := Do(context.Background(), tr, "srv", func(ctx context.Context) (string, error) {
		return "", overloadErr(time.Second)
	}); err == nil {
		t.Fatal("probe shed reported success")
	}
	if got := tr.Health("srv").State; got != StateClosed {
		t.Fatalf("breaker %v after probe answered 429, want closed", got)
	}
}
