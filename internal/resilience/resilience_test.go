package resilience

import (
	"context"
	"errors"
	"fmt"
	"net/url"
	"sync"
	"testing"
	"time"
)

// fakeClock is a manually-advanced clock so breaker cooldowns are tested
// without sleeping.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// testTracker builds a tracker with a fake clock and a recording,
// non-sleeping backoff.
func testTracker(p Policy) (*Tracker, *fakeClock, *[]time.Duration) {
	t := NewTracker(p)
	clk := newFakeClock()
	t.Now = clk.Now
	var slept []time.Duration
	t.Sleep = func(ctx context.Context, d time.Duration) error {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		slept = append(slept, d)
		return nil
	}
	t.Jitter = func(d time.Duration) time.Duration { return d } // identity: deterministic
	return t, clk, &slept
}

func httpErr(status int) error {
	return &HTTPError{URL: "http://srv/search", StatusCode: status, Msg: "injected"}
}

func TestClassify(t *testing.T) {
	bg := context.Background()
	cancelled, cancel := context.WithCancel(bg)
	cancel()
	cases := []struct {
		name string
		ctx  context.Context
		err  error
		want Class
	}{
		{"nil error", bg, nil, ClassOK},
		{"caller cancelled ctx", cancelled, errors.New("request aborted"), ClassCancelled},
		{"bare context.Canceled", bg, context.Canceled, ClassCancelled},
		{"wrapped context.Canceled", bg, &url.Error{Op: "Post", URL: "http://x", Err: context.Canceled}, ClassCancelled},
		{"deadline exceeded counts", bg, context.DeadlineExceeded, ClassTransient},
		{"wrapped deadline", bg, fmt.Errorf("call: %w", context.DeadlineExceeded), ClassTransient},
		{"http 500", bg, httpErr(500), ClassTransient},
		{"http 503", bg, httpErr(503), ClassTransient},
		{"http 403 refusal", bg, httpErr(403), ClassPermanent},
		{"http 404 refusal", bg, httpErr(404), ClassPermanent},
		{"breaker open", bg, &OpenError{Server: "http://x"}, ClassPermanent},
		{"transport error", bg, errors.New("connection refused"), ClassTransient},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := Classify(c.ctx, c.err); got != c.want {
				t.Fatalf("Classify(%v) = %v, want %v", c.err, got, c.want)
			}
		})
	}
}

func TestRetryRecoversTransientFailure(t *testing.T) {
	tr, _, slept := testTracker(Policy{Retry: RetryPolicy{MaxAttempts: 3, BaseBackoff: 10 * time.Millisecond}})
	attempts := 0
	v, err := Do(context.Background(), tr, "srv", func(ctx context.Context) (string, error) {
		attempts++
		if attempts == 1 {
			return "", httpErr(503)
		}
		return "ok", nil
	})
	if err != nil || v != "ok" {
		t.Fatalf("Do = %q, %v", v, err)
	}
	if attempts != 2 {
		t.Fatalf("attempts = %d, want 2", attempts)
	}
	if len(*slept) != 1 || (*slept)[0] != 10*time.Millisecond {
		t.Fatalf("backoffs = %v, want [10ms]", *slept)
	}
	h := tr.Health("srv")
	if h.ConsecutiveFailures != 0 || h.Successes != 1 || h.Failures != 1 {
		t.Fatalf("health after recovery = %+v", h)
	}
	if tr.Stats().Retries != 1 {
		t.Fatalf("retries = %d, want 1", tr.Stats().Retries)
	}
}

func TestBackoffDoublesAndCaps(t *testing.T) {
	tr, _, slept := testTracker(Policy{Retry: RetryPolicy{
		MaxAttempts: 5, BaseBackoff: 10 * time.Millisecond, MaxBackoff: 30 * time.Millisecond}})
	_, err := Do(context.Background(), tr, "srv", func(ctx context.Context) (int, error) {
		return 0, httpErr(500)
	})
	if err == nil {
		t.Fatal("want error after exhausting attempts")
	}
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 30 * time.Millisecond, 30 * time.Millisecond}
	if len(*slept) != len(want) {
		t.Fatalf("backoffs = %v, want %v", *slept, want)
	}
	for i := range want {
		if (*slept)[i] != want[i] {
			t.Fatalf("backoffs = %v, want %v", *slept, want)
		}
	}
}

func TestRetryBudgetSharedAcrossServers(t *testing.T) {
	tr, _, _ := testTracker(Policy{Retry: RetryPolicy{MaxAttempts: 3, Budget: 1}})
	ctx := WithBudget(context.Background(), tr.Retry.Budget)
	attempts := map[string]int{}
	for _, srv := range []string{"a", "b"} {
		_, _ = Do(ctx, tr, srv, func(ctx context.Context) (int, error) {
			attempts[srv]++
			return 0, httpErr(503)
		})
	}
	// MaxAttempts would allow 3 per server; the shared budget of 1 retry
	// means one server retried once and the other not at all.
	if got := attempts["a"] + attempts["b"]; got != 3 {
		t.Fatalf("total attempts = %d (%v), want 3 (2 firsts + 1 budgeted retry)", got, attempts)
	}
}

func TestPermanentFailureNotRetriedNotCounted(t *testing.T) {
	tr, _, _ := testTracker(Policy{Retry: RetryPolicy{MaxAttempts: 3}, BreakerThreshold: 1})
	attempts := 0
	_, err := Do(context.Background(), tr, "srv", func(ctx context.Context) (int, error) {
		attempts++
		return 0, httpErr(403)
	})
	var he *HTTPError
	if !errors.As(err, &he) || he.StatusCode != 403 {
		t.Fatalf("err = %v, want the 403 back", err)
	}
	if attempts != 1 {
		t.Fatalf("attempts = %d, want 1 (no retry of a refusal)", attempts)
	}
	h := tr.Health("srv")
	if h.ConsecutiveFailures != 0 || h.State != StateClosed {
		t.Fatalf("a 4xx refusal was charged against health: %+v", h)
	}
	// Nor is it a success: Successes counts calls that produced data, and
	// refusal latencies must not feed the hedge window.
	if h.Successes != 0 || h.P95Latency != 0 {
		t.Fatalf("a 4xx refusal was recorded as a success sample: %+v", h)
	}
}

// TestStaleSuccessDoesNotReopenTrippedBreaker: a call admitted before the
// breaker tripped may complete successfully after it; that stale verdict
// must not close a circuit that fresh failures just proved broken.
func TestStaleSuccessDoesNotReopenTrippedBreaker(t *testing.T) {
	tr, _, _ := testTracker(Policy{BreakerThreshold: 1, BreakerCooldown: time.Minute})
	if _, err := Do(context.Background(), tr, "srv", func(ctx context.Context) (int, error) {
		return 0, httpErr(503)
	}); err == nil {
		t.Fatal("want failure")
	}
	if st := tr.Health("srv").State; st != StateOpen {
		t.Fatalf("state = %v, want open", st)
	}
	// The stale pre-trip call (not a probe) reports in now.
	tr.reportSuccess("srv", time.Millisecond, false)
	if st := tr.Health("srv").State; st != StateOpen {
		t.Fatalf("stale success reopened the circuit: state = %v, want open", st)
	}
	if tr.Available("srv") {
		t.Fatal("tripped server available again after a stale success")
	}
	// Same for a stale refusal.
	tr.reportRefusal("srv", false)
	if st := tr.Health("srv").State; st != StateOpen {
		t.Fatalf("stale refusal reopened the circuit: state = %v, want open", st)
	}
}

// TestHalfOpenProbeIsNotHedged: the single admitted probe must stay a
// single request — hedging it would stampede a recovering server.
func TestHalfOpenProbeIsNotHedged(t *testing.T) {
	tr, clk, _ := testTracker(Policy{BreakerThreshold: 1, BreakerCooldown: time.Second, HedgeAfter: time.Millisecond})
	if _, err := Do(context.Background(), tr, "srv", func(ctx context.Context) (int, error) {
		return 0, httpErr(503)
	}); err == nil {
		t.Fatal("want failure")
	}
	clk.Advance(time.Second)
	var mu sync.Mutex
	attempts := 0
	v, err := Do(context.Background(), tr, "srv", func(ctx context.Context) (int, error) {
		mu.Lock()
		attempts++
		mu.Unlock()
		// Outlive the hedge delay: an (incorrect) hedge would fire now.
		time.Sleep(30 * time.Millisecond)
		return 9, nil
	})
	if err != nil || v != 9 {
		t.Fatalf("probe = %v, %v", v, err)
	}
	mu.Lock()
	defer mu.Unlock()
	if attempts != 1 {
		t.Fatalf("half-open probe ran %d attempts, want exactly 1 (no hedge)", attempts)
	}
	if tr.Stats().Hedges != 0 {
		t.Fatalf("hedges = %d, want 0", tr.Stats().Hedges)
	}
}

func TestCancellationNotCountedAgainstHealth(t *testing.T) {
	tr, _, _ := testTracker(Policy{Retry: RetryPolicy{MaxAttempts: 3}, BreakerThreshold: 1})
	ctx, cancel := context.WithCancel(context.Background())
	attempts := 0
	_, err := Do(ctx, tr, "srv", func(ctx context.Context) (int, error) {
		attempts++
		cancel() // the caller goes away mid-call
		return 0, ctx.Err()
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if attempts != 1 {
		t.Fatalf("attempts = %d, want 1 (no retry after caller cancel)", attempts)
	}
	h := tr.Health("srv")
	if h.ConsecutiveFailures != 0 || h.Failures != 0 || h.State != StateClosed {
		t.Fatalf("caller cancellation was charged against health: %+v", h)
	}
}

func TestDeadlineExceededCountsAgainstHealth(t *testing.T) {
	tr, _, _ := testTracker(Policy{BreakerThreshold: 1})
	_, _ = Do(context.Background(), tr, "srv", func(ctx context.Context) (int, error) {
		return 0, fmt.Errorf("post: %w", context.DeadlineExceeded)
	})
	h := tr.Health("srv")
	if h.ConsecutiveFailures != 1 || h.State != StateOpen {
		t.Fatalf("timeout not charged against health: %+v", h)
	}
}

func TestBreakerTripsOpensAndProbes(t *testing.T) {
	tr, clk, _ := testTracker(Policy{BreakerThreshold: 2, BreakerCooldown: time.Second})
	fail := func(ctx context.Context) (int, error) { return 0, httpErr(503) }
	succeed := func(ctx context.Context) (int, error) { return 42, nil }

	// Two consecutive failures trip the breaker.
	for i := 0; i < 2; i++ {
		if _, err := Do(context.Background(), tr, "srv", fail); err == nil {
			t.Fatal("want failure")
		}
	}
	if st := tr.Health("srv").State; st != StateOpen {
		t.Fatalf("state = %v, want open", st)
	}
	if tr.Available("srv") {
		t.Fatal("open server still listed as available")
	}

	// While open: rejected locally, the attempt function never runs.
	attempts := 0
	_, err := Do(context.Background(), tr, "srv", func(ctx context.Context) (int, error) {
		attempts++
		return 0, nil
	})
	var oe *OpenError
	if !errors.As(err, &oe) {
		t.Fatalf("err = %v, want OpenError", err)
	}
	if attempts != 0 {
		t.Fatal("open breaker still admitted a call")
	}
	if tr.Stats().Rejects == 0 {
		t.Fatal("reject not counted")
	}

	// After the cooldown the server is available again (for the probe)...
	clk.Advance(time.Second)
	if !tr.Available("srv") {
		t.Fatal("cooled-down server not available for probe")
	}
	// ...a failed probe re-opens immediately (no threshold accumulation)...
	if _, err := Do(context.Background(), tr, "srv", fail); err == nil {
		t.Fatal("want probe failure")
	}
	if st := tr.Health("srv").State; st != StateOpen {
		t.Fatalf("state after failed probe = %v, want open", st)
	}
	// ...and a successful probe closes the breaker.
	clk.Advance(time.Second)
	if v, err := Do(context.Background(), tr, "srv", succeed); err != nil || v != 42 {
		t.Fatalf("probe = %v, %v", v, err)
	}
	if st := tr.Health("srv").State; st != StateClosed {
		t.Fatalf("state after successful probe = %v, want closed", st)
	}
	if tr.Stats().Trips != 2 {
		t.Fatalf("trips = %d, want 2", tr.Stats().Trips)
	}
}

func TestHalfOpenAdmitsSingleProbe(t *testing.T) {
	tr, clk, _ := testTracker(Policy{BreakerThreshold: 1, BreakerCooldown: time.Second})
	if _, err := Do(context.Background(), tr, "srv", func(ctx context.Context) (int, error) {
		return 0, httpErr(503)
	}); err == nil {
		t.Fatal("want failure")
	}
	clk.Advance(time.Second)

	// The probe blocks; a second concurrent call must be rejected while it
	// is in flight. Channel-synchronized: no sleeps.
	probeStarted := make(chan struct{})
	release := make(chan struct{})
	probeDone := make(chan error, 1)
	go func() {
		_, err := Do(context.Background(), tr, "srv", func(ctx context.Context) (int, error) {
			close(probeStarted)
			<-release
			return 1, nil
		})
		probeDone <- err
	}()
	<-probeStarted
	attempts := 0
	_, err := Do(context.Background(), tr, "srv", func(ctx context.Context) (int, error) {
		attempts++
		return 0, nil
	})
	var oe *OpenError
	if !errors.As(err, &oe) || attempts != 0 {
		t.Fatalf("concurrent call during probe: err=%v attempts=%d, want local rejection", err, attempts)
	}
	close(release)
	if err := <-probeDone; err != nil {
		t.Fatalf("probe failed: %v", err)
	}
	if st := tr.Health("srv").State; st != StateClosed {
		t.Fatalf("state = %v, want closed", st)
	}
}

func TestHedgeSpawnsAndWinnerCancelsStraggler(t *testing.T) {
	tr := NewTracker(Policy{HedgeAfter: time.Millisecond})
	var mu sync.Mutex
	attempts := 0
	stragglerCancelled := make(chan struct{})
	v, err := Do(context.Background(), tr, "srv", func(ctx context.Context) (string, error) {
		mu.Lock()
		n := attempts
		attempts++
		mu.Unlock()
		if n == 0 {
			// Primary: a straggler that only returns when cancelled.
			<-ctx.Done()
			close(stragglerCancelled)
			return "", ctx.Err()
		}
		return "hedge", nil
	})
	if err != nil || v != "hedge" {
		t.Fatalf("Do = %q, %v, want the hedge's answer", v, err)
	}
	select {
	case <-stragglerCancelled:
	case <-time.After(5 * time.Second):
		t.Fatal("straggler never saw cancellation")
	}
	if got := tr.Stats().Hedges; got != 1 {
		t.Fatalf("hedges = %d, want 1", got)
	}
	if h := tr.Health("srv"); h.Successes != 1 || h.ConsecutiveFailures != 0 {
		t.Fatalf("health = %+v", h)
	}
}

func TestFastFailureDoesNotSpawnHedge(t *testing.T) {
	tr := NewTracker(Policy{HedgeAfter: time.Hour})
	attempts := 0
	_, err := Do(context.Background(), tr, "srv", func(ctx context.Context) (int, error) {
		attempts++
		return 0, httpErr(500)
	})
	if err == nil {
		t.Fatal("want failure")
	}
	if attempts != 1 || tr.Stats().Hedges != 0 {
		t.Fatalf("attempts=%d hedges=%d, want a single un-hedged attempt", attempts, tr.Stats().Hedges)
	}
}

func TestBothHedgeAttemptsFailReturnsFirstError(t *testing.T) {
	tr := NewTracker(Policy{HedgeAfter: time.Millisecond})
	var mu sync.Mutex
	attempts := 0
	first := errors.New("primary boom")
	second := errors.New("hedge boom")
	primaryMayFail := make(chan struct{})
	_, err := Do(context.Background(), tr, "srv", func(ctx context.Context) (int, error) {
		mu.Lock()
		n := attempts
		attempts++
		mu.Unlock()
		if n == 0 {
			<-primaryMayFail // hold the primary until the hedge has failed
			return 0, first
		}
		close(primaryMayFail)
		return 0, second
	})
	if !errors.Is(err, second) {
		t.Fatalf("err = %v, want the first-completing failure (%v)", err, second)
	}
	if attempts != 2 {
		t.Fatalf("attempts = %d, want 2", attempts)
	}
}

func TestHedgeDelayAdaptsToP95(t *testing.T) {
	tr, clk, _ := testTracker(Policy{HedgeAfter: 500 * time.Millisecond})
	// Before any samples, the knob is used.
	if d := tr.hedgeDelay("srv"); d != 500*time.Millisecond {
		t.Fatalf("cold hedge delay = %v, want the HedgeAfter knob", d)
	}
	// Warm the window: 20 successful calls at 10ms each (fake clock).
	for i := 0; i < 20; i++ {
		_, err := Do(context.Background(), tr, "srv", func(ctx context.Context) (int, error) {
			clk.Advance(10 * time.Millisecond)
			return 1, nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	h := tr.Health("srv")
	if h.EWMALatency == 0 || h.P95Latency != 10*time.Millisecond {
		t.Fatalf("health after warmup = %+v, want p95 = 10ms", h)
	}
	if d := tr.hedgeDelay("srv"); d != 10*time.Millisecond {
		t.Fatalf("warm hedge delay = %v, want tracked p95 (10ms)", d)
	}
}

func TestNeutralPolicySingleAttemptPassthrough(t *testing.T) {
	// A tracker with the zero policy tracks health but changes nothing
	// about call behaviour — the determinism-regression guarantee.
	tr, _, slept := testTracker(Policy{})
	if tr.Enabled() {
		t.Fatal("zero policy reports Enabled")
	}
	attempts := 0
	v, err := Do(context.Background(), tr, "srv", func(ctx context.Context) (string, error) {
		attempts++
		return "v", nil
	})
	if v != "v" || err != nil || attempts != 1 || len(*slept) != 0 {
		t.Fatalf("passthrough broken: v=%q err=%v attempts=%d sleeps=%v", v, err, attempts, *slept)
	}
	if h := tr.Health("srv"); h.Successes != 1 {
		t.Fatalf("health not tracked under neutral policy: %+v", h)
	}
	// Failures pass through un-retried and the breaker never opens.
	attempts = 0
	_, err = Do(context.Background(), tr, "srv", func(ctx context.Context) (string, error) {
		attempts++
		return "", httpErr(503)
	})
	if err == nil || attempts != 1 {
		t.Fatalf("neutral policy retried: attempts=%d err=%v", attempts, err)
	}
	if st := tr.Health("srv").State; st != StateClosed {
		t.Fatalf("neutral policy tripped a breaker: %v", st)
	}
}

func TestNilTrackerRunsAttemptDirectly(t *testing.T) {
	v, err := Do[int](context.Background(), nil, "srv", func(ctx context.Context) (int, error) {
		return 7, nil
	})
	if v != 7 || err != nil {
		t.Fatalf("Do(nil tracker) = %v, %v", v, err)
	}
}
