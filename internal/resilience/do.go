package resilience

import (
	"context"
	"errors"
	"sync/atomic"
	"time"
)

// budgetKey carries a request-wide retry budget through the fan-out
// context (see RetryPolicy.Budget).
type budgetKey struct{}

type budget struct{ n atomic.Int64 }

// WithBudget attaches a retry budget to ctx: calls run under the returned
// context (across all servers of one logical request) may spend at most
// retries re-attempts between them.
func WithBudget(ctx context.Context, retries int) context.Context {
	b := &budget{}
	b.n.Store(int64(retries))
	return context.WithValue(ctx, budgetKey{}, b)
}

// HasBudget reports whether ctx already carries a retry budget, so callers
// can attach one per logical request without overriding an outer stage's.
func HasBudget(ctx context.Context) bool {
	_, ok := ctx.Value(budgetKey{}).(*budget)
	return ok
}

// takeBudget consumes one retry from the context's budget (always allowed
// when no budget is attached).
func takeBudget(ctx context.Context) bool {
	b, _ := ctx.Value(budgetKey{}).(*budget)
	if b == nil {
		return true
	}
	return b.n.Add(-1) >= 0
}

// Do runs one logical call to a server through the tracker's resilience
// policy: the breaker may reject it locally, each attempt may be hedged,
// transient failures are retried with jittered backoff within the
// per-request budget, and every outcome is reported to the server's
// health. A nil tracker runs the attempt directly.
func Do[T any](ctx context.Context, t *Tracker, server string, attempt func(context.Context) (T, error)) (T, error) {
	var zero T
	if t == nil {
		return attempt(ctx)
	}
	maxAttempts := t.Retry.MaxAttempts
	if maxAttempts < 1 {
		maxAttempts = 1
	}
	var lastErr error
	for n := 0; n < maxAttempts; n++ {
		if n > 0 {
			if ctx.Err() != nil {
				break
			}
			if !takeBudget(ctx) {
				break
			}
			t.recordRetry()
			if err := t.backoff(ctx, n, retryFloor(lastErr)); err != nil {
				break
			}
		}
		ok, probe := t.admit(server)
		if !ok {
			if lastErr == nil {
				lastErr = &OpenError{Server: server}
			}
			break // an open breaker will reject every further attempt too
		}
		start := t.now()
		var v T
		var err error
		if probe {
			// The half-open probe is the single admitted call; hedging it
			// would send a second concurrent request to a recovering server.
			v, err = attempt(ctx)
		} else {
			v, err = hedged(ctx, t, server, attempt)
		}
		latency := t.now().Sub(start)
		switch Classify(ctx, err) {
		case ClassOK:
			t.reportSuccess(server, latency, probe)
			return v, nil
		case ClassCancelled:
			t.reportCancelled(server, probe)
			return zero, err
		case ClassPermanent:
			// The server answered decisively; that is a liveness signal
			// even though the call failed. Retrying cannot help.
			t.reportRefusal(server, probe)
			return zero, err
		case ClassOverload:
			// The server shed the request: alive (no breaker damage), but
			// retrying before its Retry-After hint only deepens the
			// overload — the hint floors the next backoff (see retryFloor).
			t.reportShed(server, probe)
			lastErr = err
		default: // ClassTransient
			t.reportFailure(server, probe)
			lastErr = err
		}
	}
	return zero, lastErr
}

// retryFloor extracts the server-provided backoff floor from the previous
// attempt's error: a shed server's Retry-After hint; zero otherwise.
func retryFloor(err error) time.Duration {
	var he *HTTPError
	if errors.As(err, &he) {
		return he.RetryAfter
	}
	return 0
}

// hedged runs one attempt, spawning a racing second attempt if the first
// has not answered within the server's hedge delay. The first success
// wins and the straggler is cancelled through its context; if every
// launched attempt fails, the first error is returned. An attempt that
// fails *before* the hedge delay returns immediately without spawning a
// hedge (the retry layer, not the hedger, handles fast failures).
func hedged[T any](ctx context.Context, t *Tracker, server string, attempt func(context.Context) (T, error)) (T, error) {
	delay := t.hedgeDelay(server)
	if delay <= 0 {
		return attempt(ctx)
	}
	hctx, cancel := context.WithCancel(ctx)
	defer cancel() // aborts the straggler once a winner returns

	type outcome struct {
		v   T
		err error
	}
	// Buffered so the losing attempt's send never blocks: its goroutine
	// exits even though nobody reads the second result.
	results := make(chan outcome, 2)
	run := func() {
		v, err := attempt(hctx)
		results <- outcome{v: v, err: err}
	}
	go run()
	inFlight := 1
	hedgeFired := false
	timer := time.NewTimer(delay)
	defer timer.Stop()
	var firstErr error
	for {
		select {
		case <-timer.C:
			if !hedgeFired {
				hedgeFired = true
				t.recordHedge()
				inFlight++
				go run()
			}
		case o := <-results:
			if o.err == nil {
				return o.v, nil
			}
			if firstErr == nil {
				firstErr = o.err
			}
			inFlight--
			if inFlight == 0 {
				var zero T
				return zero, firstErr
			}
		}
	}
}
