package s2cell

import (
	"math/rand"
	"testing"

	"openflame/internal/geo"
)

func TestCoveringRectContainsInteriorPoints(t *testing.T) {
	r := geo.RectFromCenter(geo.LatLng{Lat: 40.44, Lng: -79.99}, 0.01, 0.01)
	cells := Covering(RectRegion{r}, 14, 0)
	if len(cells) == 0 {
		t.Fatal("empty covering")
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		p := geo.LatLng{
			Lat: r.MinLat + rng.Float64()*(r.MaxLat-r.MinLat),
			Lng: r.MinLng + rng.Float64()*(r.MaxLng-r.MinLng),
		}
		if !CellUnionContains(cells, FromLatLng(p)) {
			t.Fatalf("covering misses interior point %v", p)
		}
	}
	for _, c := range cells {
		if c.Level() != 14 {
			t.Fatalf("cell level %d, want 14", c.Level())
		}
	}
}

func TestCoveringCap(t *testing.T) {
	cap := geo.Cap{Center: geo.LatLng{Lat: 40.44, Lng: -79.99}, RadiusMeters: 300}
	cells := Covering(CapRegion{cap}, 16, 0)
	if len(cells) == 0 {
		t.Fatal("empty covering")
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		p := geo.Offset(cap.Center, rng.Float64()*300, rng.Float64()*360)
		if !CellUnionContains(cells, FromLatLng(p)) {
			t.Fatalf("cap covering misses interior point %v", p)
		}
	}
	// The covering should not be wildly larger than the cap: no cell center
	// farther than radius + 2 cell diagonals.
	for _, c := range cells {
		d := geo.DistanceMeters(cap.Center, c.LatLng())
		if d > cap.RadiusMeters+3*ApproxEdgeMeters(16) {
			t.Fatalf("covering cell center %v m from cap center", d)
		}
	}
}

func TestCoveringMaxCellsCoarsens(t *testing.T) {
	r := geo.RectFromCenter(geo.LatLng{Lat: 40.44, Lng: -79.99}, 0.05, 0.05)
	fine := Covering(RectRegion{r}, 16, 0)
	capped := Covering(RectRegion{r}, 16, 8)
	if len(capped) > 8 {
		t.Fatalf("capped covering has %d cells", len(capped))
	}
	if len(fine) <= 8 {
		t.Skip("fine covering unexpectedly small; cap not exercised")
	}
	if capped[0].Level() >= 16 {
		t.Fatal("capped covering did not coarsen")
	}
	// Capped covering must still contain the region.
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		p := geo.LatLng{
			Lat: r.MinLat + rng.Float64()*(r.MaxLat-r.MinLat),
			Lng: r.MinLng + rng.Float64()*(r.MaxLng-r.MinLng),
		}
		if !CellUnionContains(capped, FromLatLng(p)) {
			t.Fatalf("capped covering misses %v", p)
		}
	}
}

func TestRegistrationCoveringMixedLevels(t *testing.T) {
	r := geo.RectFromCenter(geo.LatLng{Lat: 40.44, Lng: -79.99}, 0.02, 0.02)
	cells := RegistrationCovering(RectRegion{r}, 10, 15)
	if len(cells) == 0 {
		t.Fatal("empty registration covering")
	}
	levels := map[int]int{}
	for _, c := range cells {
		l := c.Level()
		if l < 10 || l > 15 {
			t.Fatalf("cell level %d outside [10,15]", l)
		}
		levels[l]++
	}
	if len(levels) < 2 {
		t.Log("warning: registration covering has a single level; merge may not have triggered")
	}
	// Every interior point is covered.
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 200; i++ {
		p := geo.LatLng{
			Lat: r.MinLat + rng.Float64()*(r.MaxLat-r.MinLat),
			Lng: r.MinLng + rng.Float64()*(r.MaxLng-r.MinLng),
		}
		if !CellUnionContains(cells, FromLatLng(p)) {
			t.Fatalf("registration covering misses %v", p)
		}
	}
	// No cell contains another.
	for i, a := range cells {
		for j, b := range cells {
			if i != j && a.Contains(b) {
				t.Fatalf("normalized covering has nested cells %v ⊃ %v", a, b)
			}
		}
	}
}

func TestNormalizeMergesCompleteSiblings(t *testing.T) {
	parent := FromLatLngLevel(geo.LatLng{Lat: 40, Lng: -80}, 12)
	kids := parent.Children()
	got := normalize(kids[:], 0)
	if len(got) != 1 || got[0] != parent {
		t.Fatalf("normalize(children) = %v, want [%v]", got, parent)
	}
	// Partial sibling sets do not merge.
	got = normalize(kids[:3], 0)
	if len(got) != 3 {
		t.Fatalf("normalize(3 children) merged: %v", got)
	}
	// minLevel prevents merging.
	got = normalize(kids[:], 13)
	if len(got) != 4 {
		t.Fatalf("normalize with minLevel merged: %v", got)
	}
}

func TestNormalizeRecursiveMerge(t *testing.T) {
	// All 16 grandchildren collapse to the grandparent.
	gp := FromLatLngLevel(geo.LatLng{Lat: 40, Lng: -80}, 10)
	var gkids []CellID
	for _, k := range gp.Children() {
		kk := k.Children()
		gkids = append(gkids, kk[:]...)
	}
	got := normalize(gkids, 0)
	if len(got) != 1 || got[0] != gp {
		t.Fatalf("recursive normalize = %v, want [%v]", got, gp)
	}
}

func TestPolygonRegion(t *testing.T) {
	// Triangle near Pittsburgh.
	poly := geo.Polygon{Vertices: []geo.LatLng{
		{Lat: 40.40, Lng: -80.00}, {Lat: 40.48, Lng: -80.00}, {Lat: 40.44, Lng: -79.90},
	}}
	reg := PolygonRegion{poly}
	cells := Covering(reg, 13, 0)
	if len(cells) == 0 {
		t.Fatal("empty polygon covering")
	}
	// Points inside the triangle are covered.
	inside := geo.LatLng{Lat: 40.44, Lng: -79.97}
	if !poly.Contains(inside) {
		t.Fatal("test point not inside polygon")
	}
	if !CellUnionContains(cells, FromLatLng(inside)) {
		t.Fatal("polygon covering misses interior point")
	}
	// Far away points are not.
	if CellUnionContains(cells, FromLatLng(geo.LatLng{Lat: 41, Lng: -79})) {
		t.Fatal("polygon covering includes far exterior point")
	}
}

func TestPolygonRegionPredicates(t *testing.T) {
	poly := geo.Polygon{Vertices: []geo.LatLng{
		{Lat: 0, Lng: 0}, {Lat: 0, Lng: 10}, {Lat: 10, Lng: 10}, {Lat: 10, Lng: 0},
	}}
	reg := PolygonRegion{poly}
	if !reg.IntersectsRect(geo.Rect{MinLat: 5, MinLng: 5, MaxLat: 6, MaxLng: 6}) {
		t.Fatal("interior rect not intersecting")
	}
	if !reg.IntersectsRect(geo.Rect{MinLat: -1, MinLng: -1, MaxLat: 1, MaxLng: 1}) {
		t.Fatal("corner-overlap rect not intersecting")
	}
	if reg.IntersectsRect(geo.Rect{MinLat: 20, MinLng: 20, MaxLat: 21, MaxLng: 21}) {
		t.Fatal("far rect intersecting")
	}
	// Rect crossing the polygon edge with no vertices inside either shape.
	if !reg.IntersectsRect(geo.Rect{MinLat: -1, MinLng: 2, MaxLat: 11, MaxLng: 3}) {
		t.Fatal("strip-crossing rect not intersecting")
	}
	if !reg.ContainsRect(geo.Rect{MinLat: 1, MinLng: 1, MaxLat: 2, MaxLng: 2}) {
		t.Fatal("contained rect not contained")
	}
	if reg.ContainsRect(geo.Rect{MinLat: 5, MinLng: 5, MaxLat: 15, MaxLng: 6}) {
		t.Fatal("protruding rect contained")
	}
}

func TestCapRegionPredicates(t *testing.T) {
	c := CapRegion{geo.Cap{Center: geo.LatLng{Lat: 40, Lng: -80}, RadiusMeters: 1000}}
	if !c.IntersectsRect(geo.RectFromCenter(geo.LatLng{Lat: 40, Lng: -80}, 0.001, 0.001)) {
		t.Fatal("center rect not intersecting")
	}
	if c.IntersectsRect(geo.RectFromCenter(geo.LatLng{Lat: 41, Lng: -80}, 0.001, 0.001)) {
		t.Fatal("far rect intersecting")
	}
	if !c.ContainsRect(geo.RectFromCenter(geo.LatLng{Lat: 40, Lng: -80}, 0.001, 0.001)) {
		t.Fatal("small center rect not contained")
	}
	if c.ContainsRect(geo.RectFromCenter(geo.LatLng{Lat: 40, Lng: -80}, 0.5, 0.5)) {
		t.Fatal("huge rect contained")
	}
	if c.IntersectsRect(geo.EmptyRect()) {
		t.Fatal("empty rect intersects")
	}
}

func TestCellUnionHelpers(t *testing.T) {
	a := FromLatLngLevel(geo.LatLng{Lat: 40, Lng: -80}, 10)
	union := []CellID{a}
	leafIn := FromLatLng(a.LatLng())
	if !CellUnionContains(union, leafIn) {
		t.Fatal("union misses contained leaf")
	}
	if !CellUnionIntersects(union, a.ImmediateParent()) {
		t.Fatal("union does not intersect its parent")
	}
	if CellUnionContains(union, a.ImmediateParent()) {
		t.Fatal("union contains its parent")
	}
	if CellUnionContains(nil, leafIn) {
		t.Fatal("empty union contains")
	}
}

func BenchmarkFromLatLng(b *testing.B) {
	ll := geo.LatLng{Lat: 40.44, Lng: -79.99}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		FromLatLng(ll)
	}
}

func BenchmarkCoveringCap500m(b *testing.B) {
	cap := CapRegion{geo.Cap{Center: geo.LatLng{Lat: 40.44, Lng: -79.99}, RadiusMeters: 500}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Covering(cap, 15, 0)
	}
}

func BenchmarkToken(b *testing.B) {
	c := FromLatLng(geo.LatLng{Lat: 40.44, Lng: -79.99})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = c.Token()
	}
}
