// Package s2cell implements an S2-style hierarchical decomposition of the
// sphere: the six faces of a cube are projected onto the sphere and each face
// is recursively divided into four children, with cells at each level ordered
// along a Hilbert space-filling curve.
//
// This is a from-scratch reimplementation of the indexing core of the S2
// library the paper cites (§5.1 [15]). Cell IDs here are structurally
// identical to S2's (64-bit: 3 face bits, two bits per level along the
// Hilbert curve, a trailing marker bit) and have the same properties the
// discovery layer relies on — hierarchical containment is a prefix relation,
// tokens are compact, and spatially close points receive numerically close
// IDs — but tokens are not guaranteed to be byte-compatible with Google S2.
package s2cell

import (
	"fmt"
	"math"
	"math/bits"
	"strconv"
	"strings"

	"openflame/internal/geo"
)

const (
	// MaxLevel is the finest subdivision level. A level-30 cell is under
	// a centimeter across.
	MaxLevel = 30

	numFaces = 6
	posBits  = 2*MaxLevel + 1 // 61
	maxSize  = 1 << MaxLevel

	swapMask   = 0x01
	invertMask = 0x02
)

// Hilbert curve traversal tables. posToIJ[orientation][position] gives the
// (i<<1|j) quadrant visited at that position of the curve; ijToPos is the
// per-orientation inverse; posToOrientation gives the orientation change
// entering each position.
var (
	posToIJ = [4][4]int{
		{0, 1, 3, 2}, // canonical
		{0, 2, 3, 1}, // axes swapped
		{3, 2, 0, 1}, // bits inverted
		{3, 1, 0, 2}, // swapped & inverted
	}
	ijToPos = [4][4]int{
		{0, 1, 3, 2},
		{0, 3, 1, 2},
		{2, 3, 1, 0},
		{2, 1, 3, 0},
	}
	posToOrientation = [4]int{swapMask, 0, 0, invertMask | swapMask}
)

// CellID identifies a cell in the hierarchy. The zero value is invalid.
type CellID uint64

// FromLatLng returns the leaf cell (level 30) containing ll.
func FromLatLng(ll geo.LatLng) CellID {
	face, u, v := xyzToFaceUV(latLngToXYZ(ll))
	i := stToIJ(uvToST(u))
	j := stToIJ(uvToST(v))
	return fromFaceIJ(face, i, j, MaxLevel)
}

// FromLatLngLevel returns the cell at the given level containing ll.
func FromLatLngLevel(ll geo.LatLng, level int) CellID {
	return FromLatLng(ll).Parent(level)
}

// FromFace returns the top-level cell for face (0..5).
func FromFace(face int) CellID {
	return CellID(uint64(face)<<posBits | 1<<(posBits-1))
}

// IsValid reports whether the cell ID is well formed: a known face and a
// trailing marker bit at an even position no deeper than MaxLevel.
func (c CellID) IsValid() bool {
	if c == 0 || c.Face() >= numFaces {
		return false
	}
	tz := bits.TrailingZeros64(uint64(c))
	return tz%2 == 0 && tz <= 2*MaxLevel
}

// Level returns the subdivision level of the cell (0..30).
func (c CellID) Level() int {
	return MaxLevel - bits.TrailingZeros64(uint64(c))/2
}

// Face returns the cube face (0..5) of the cell.
func (c CellID) Face() int { return int(c >> posBits) }

// lsb returns the lowest set bit of the ID.
func (c CellID) lsb() uint64 { return uint64(c) & -uint64(c) }

func lsbForLevel(level int) uint64 { return 1 << uint(2*(MaxLevel-level)) }

// Parent returns the ancestor cell at the given level, which must be at most
// c.Level().
func (c CellID) Parent(level int) CellID {
	lsb := lsbForLevel(level)
	return CellID((uint64(c) & -lsb) | lsb)
}

// ImmediateParent returns the parent one level up.
func (c CellID) ImmediateParent() CellID { return c.Parent(c.Level() - 1) }

// IsLeaf reports whether the cell is at MaxLevel.
func (c CellID) IsLeaf() bool { return uint64(c)&1 != 0 }

// IsFace reports whether the cell is a top-level face cell.
func (c CellID) IsFace() bool { return uint64(c)&(lsbForLevel(0)-1) == 0 }

// Children returns the four child cells in Hilbert order. Calling Children
// on a leaf returns the cell four times; callers should check IsLeaf.
func (c CellID) Children() [4]CellID {
	var out [4]CellID
	lsb := c.lsb()
	if lsb == 1 {
		return [4]CellID{c, c, c, c}
	}
	childLsb := lsb >> 2
	base := uint64(c) - lsb + childLsb
	for i := 0; i < 4; i++ {
		out[i] = CellID(base + uint64(i)*childLsb*2)
	}
	return out
}

// RangeMin returns the first leaf cell contained in c.
func (c CellID) RangeMin() CellID { return CellID(uint64(c) - c.lsb() + 1) }

// RangeMax returns the last leaf cell contained in c.
func (c CellID) RangeMax() CellID { return CellID(uint64(c) + c.lsb() - 1) }

// Contains reports whether c contains o (including c == o).
func (c CellID) Contains(o CellID) bool {
	return uint64(o) >= uint64(c.RangeMin()) && uint64(o) <= uint64(c.RangeMax())
}

// Intersects reports whether the two cells overlap (one contains the other).
func (c CellID) Intersects(o CellID) bool {
	return c.Contains(o) || o.Contains(c)
}

// Token returns the compact hexadecimal representation: the 16-digit hex ID
// with trailing zeros stripped ("X" for the zero/invalid ID).
func (c CellID) Token() string {
	if c == 0 {
		return "X"
	}
	s := fmt.Sprintf("%016x", uint64(c))
	return strings.TrimRight(s, "0")
}

// FromToken parses a token produced by Token. Invalid tokens return 0.
func FromToken(tok string) CellID {
	if tok == "" || tok == "X" || len(tok) > 16 {
		return 0
	}
	v, err := strconv.ParseUint(tok+strings.Repeat("0", 16-len(tok)), 16, 64)
	if err != nil {
		return 0
	}
	return CellID(v)
}

// String implements fmt.Stringer with face/level/token detail.
func (c CellID) String() string {
	return fmt.Sprintf("cell(f%d L%d %s)", c.Face(), c.Level(), c.Token())
}

// --- face/i/j encoding ---

// fromFaceIJ builds the cell at the given level from leaf-resolution i,j
// coordinates on the face (only the top `level` bits of i and j are used).
func fromFaceIJ(face, i, j, level int) CellID {
	pos := uint64(0)
	o := 0
	for k := MaxLevel - 1; k >= MaxLevel-level; k-- {
		iBit := (i >> uint(k)) & 1
		jBit := (j >> uint(k)) & 1
		p := ijToPos[o][iBit<<1|jBit]
		pos = pos<<2 | uint64(p)
		o ^= posToOrientation[p]
	}
	shift := uint(2*(MaxLevel-level) + 1)
	return CellID(uint64(face)<<posBits | pos<<shift | 1<<(shift-1))
}

// faceIJ decodes the cell into its face and the i,j coordinates of its
// minimum corner at cell resolution (i.e. in [0, 2^level)).
func (c CellID) faceIJ() (face, i, j, level int) {
	face = c.Face()
	level = c.Level()
	shift := uint(2*(MaxLevel-level) + 1)
	pos := (uint64(c) >> shift) & ((1 << uint(2*level)) - 1)
	o := 0
	for k := level - 1; k >= 0; k-- {
		p := int((pos >> uint(2*k)) & 3)
		ij := posToIJ[o][p]
		i = i<<1 | ij>>1
		j = j<<1 | ij&1
		o ^= posToOrientation[p]
	}
	return face, i, j, level
}

// LatLng returns the center of the cell.
func (c CellID) LatLng() geo.LatLng {
	face, i, j, level := c.faceIJ()
	size := 1.0 / float64(uint64(1)<<uint(level))
	s := (float64(i) + 0.5) * size
	t := (float64(j) + 0.5) * size
	return xyzToLatLng(faceUVToXYZ(face, stToUV(s), stToUV(t)))
}

// Vertices returns the four corners of the cell in counter-clockwise order.
func (c CellID) Vertices() [4]geo.LatLng {
	face, i, j, level := c.faceIJ()
	size := 1.0 / float64(uint64(1)<<uint(level))
	s0, t0 := float64(i)*size, float64(j)*size
	s1, t1 := s0+size, t0+size
	return [4]geo.LatLng{
		xyzToLatLng(faceUVToXYZ(face, stToUV(s0), stToUV(t0))),
		xyzToLatLng(faceUVToXYZ(face, stToUV(s1), stToUV(t0))),
		xyzToLatLng(faceUVToXYZ(face, stToUV(s1), stToUV(t1))),
		xyzToLatLng(faceUVToXYZ(face, stToUV(s0), stToUV(t1))),
	}
}

// Bound returns a latitude/longitude rectangle that contains the cell. The
// bound is computed from the cell's corners, edge midpoints, and center and
// padded slightly, so it is conservative for cells that do not cross the
// antimeridian or contain a pole; for those, use BoundRects.
func (c CellID) Bound() geo.Rect {
	rects := c.BoundRects()
	r := rects[0]
	for _, q := range rects[1:] {
		r = r.Union(q)
	}
	return r
}

// BoundRects returns one or two non-wrapping latitude/longitude rectangles
// that together contain the cell. Cells crossing the antimeridian yield two
// rectangles; cells containing a pole yield a full-longitude rectangle
// extended to that pole.
func (c CellID) BoundRects() []geo.Rect {
	face, i, j, level := c.faceIJ()
	size := 1.0 / float64(uint64(1)<<uint(level))
	s0, t0 := float64(i)*size, float64(j)*size
	var samples []geo.LatLng
	for _, fs := range []float64{0, 0.5, 1} {
		for _, ft := range []float64{0, 0.5, 1} {
			samples = append(samples,
				xyzToLatLng(faceUVToXYZ(face, stToUV(s0+fs*size), stToUV(t0+ft*size))))
		}
	}
	r := geo.EmptyRect()
	for _, ll := range samples {
		r = r.ExpandToInclude(ll)
	}
	pad := func(q geo.Rect) geo.Rect {
		return q.Expanded((q.MaxLat-q.MinLat)*0.01+1e-9, (q.MaxLng-q.MinLng)*0.01+1e-9)
	}
	if r.MaxLng-r.MinLng <= 180 {
		return []geo.Rect{pad(r)}
	}
	// The cell's longitudes wrap. If the cell contains a pole (the cube
	// face center of the ±z faces), its true bound spans all longitudes.
	if face == 2 || face == 5 {
		half := maxSize / 2
		cellSpan := 1 << uint(MaxLevel-level)
		iMin, jMin := i<<uint(MaxLevel-level), j<<uint(MaxLevel-level)
		if iMin <= half && half <= iMin+cellSpan && jMin <= half && half <= jMin+cellSpan {
			out := geo.Rect{MinLat: r.MinLat, MaxLat: r.MaxLat, MinLng: -180, MaxLng: 180}
			if face == 2 {
				out.MaxLat = 90
			} else {
				out.MinLat = -90
			}
			return []geo.Rect{out}
		}
	}
	// Antimeridian crossing: split samples by longitude sign.
	east := geo.EmptyRect() // positive longitudes, up to 180
	west := geo.EmptyRect() // negative longitudes, down to -180
	for _, ll := range samples {
		if ll.Lng >= 0 {
			east = east.ExpandToInclude(ll)
		} else {
			west = west.ExpandToInclude(ll)
		}
	}
	east.MaxLng = 180
	west.MinLng = -180
	east.MinLat, west.MinLat = r.MinLat, r.MinLat
	east.MaxLat, west.MaxLat = r.MaxLat, r.MaxLat
	return []geo.Rect{pad(east), pad(west)}
}

// EdgeNeighbors returns the four cells adjacent to c across its edges, at
// the same level. Neighbors that would cross a cube-face boundary are
// omitted; OpenFLAME deployments span metro areas well inside a face, and
// the discovery layer's fuzziness handling uses expanded coverings rather
// than exact adjacency at face seams.
func (c CellID) EdgeNeighbors() []CellID {
	face, i, j, level := c.faceIJ()
	max := 1<<uint(level) - 1
	var out []CellID
	for _, d := range [4][2]int{{-1, 0}, {1, 0}, {0, -1}, {0, 1}} {
		ni, nj := i+d[0], j+d[1]
		if ni < 0 || ni > max || nj < 0 || nj > max {
			continue
		}
		out = append(out, fromFaceIJ(face, ni<<uint(MaxLevel-level), nj<<uint(MaxLevel-level), level))
	}
	return out
}

// ChildPosition returns the cell's 2-bit Hilbert position (0..3) within its
// ancestor at level-1, for 1 <= level <= c.Level(). It is the quadrant
// label used to build discovery domain names.
func (c CellID) ChildPosition(level int) int {
	return int(uint64(c)>>uint(2*(MaxLevel-level)+1)) & 3
}

// AncestorChain returns the cell's ancestors from fromLevel down to the
// cell's own level, inclusive, coarsest first. It is the sequence of domain
// names a discovery client queries.
func (c CellID) AncestorChain(fromLevel int) []CellID {
	level := c.Level()
	if fromLevel < 0 {
		fromLevel = 0
	}
	if fromLevel > level {
		fromLevel = level
	}
	out := make([]CellID, 0, level-fromLevel+1)
	for l := fromLevel; l <= level; l++ {
		out = append(out, c.Parent(l))
	}
	return out
}

// ApproxEdgeMeters returns the approximate edge length of cells at the given
// level: a quarter of the Earth's circumference divided by 2^level.
func ApproxEdgeMeters(level int) float64 {
	return (math.Pi * geo.EarthRadiusMeters / 2) / float64(uint64(1)<<uint(level))
}

// LevelForEdgeMeters returns the coarsest level whose cells have edges no
// longer than m meters.
func LevelForEdgeMeters(m float64) int {
	for l := 0; l <= MaxLevel; l++ {
		if ApproxEdgeMeters(l) <= m {
			return l
		}
	}
	return MaxLevel
}

// --- sphere <-> cube projections ---

type xyz struct{ x, y, z float64 }

func latLngToXYZ(ll geo.LatLng) xyz {
	phi := geo.DegToRad(ll.Lat)
	theta := geo.DegToRad(ll.Lng)
	cos := math.Cos(phi)
	return xyz{cos * math.Cos(theta), cos * math.Sin(theta), math.Sin(phi)}
}

func xyzToLatLng(p xyz) geo.LatLng {
	return geo.LatLng{
		Lat: geo.RadToDeg(math.Atan2(p.z, math.Hypot(p.x, p.y))),
		Lng: geo.RadToDeg(math.Atan2(p.y, p.x)),
	}
}

// xyzToFaceUV projects a point on the sphere onto the cube, returning the
// face and the (u,v) coordinates on that face in [-1,1].
func xyzToFaceUV(p xyz) (face int, u, v float64) {
	ax, ay, az := math.Abs(p.x), math.Abs(p.y), math.Abs(p.z)
	switch {
	case ax >= ay && ax >= az:
		if p.x >= 0 {
			face = 0
		} else {
			face = 3
		}
	case ay >= ax && ay >= az:
		if p.y >= 0 {
			face = 1
		} else {
			face = 4
		}
	default:
		if p.z >= 0 {
			face = 2
		} else {
			face = 5
		}
	}
	switch face {
	case 0:
		u, v = p.y/p.x, p.z/p.x
	case 1:
		u, v = -p.x/p.y, p.z/p.y
	case 2:
		u, v = -p.x/p.z, -p.y/p.z
	case 3:
		u, v = p.z/p.x, p.y/p.x
	case 4:
		u, v = p.z/p.y, -p.x/p.y
	case 5:
		u, v = -p.y/p.z, -p.x/p.z
	}
	return face, u, v
}

// faceUVToXYZ is the inverse of xyzToFaceUV (result is not normalized; only
// its direction matters).
func faceUVToXYZ(face int, u, v float64) xyz {
	switch face {
	case 0:
		return xyz{1, u, v}
	case 1:
		return xyz{-u, 1, v}
	case 2:
		return xyz{-u, -v, 1}
	case 3:
		return xyz{-1, -v, -u}
	case 4:
		return xyz{v, -1, -u}
	default:
		return xyz{v, u, -1}
	}
}

// stToUV applies S2's quadratic reprojection, which equalizes cell areas
// across a face.
func stToUV(s float64) float64 {
	if s >= 0.5 {
		return (1.0 / 3) * (4*s*s - 1)
	}
	return (1.0 / 3) * (1 - 4*(1-s)*(1-s))
}

// uvToST is the inverse of stToUV.
func uvToST(u float64) float64 {
	if u >= 0 {
		return 0.5 * math.Sqrt(1+3*u)
	}
	return 1 - 0.5*math.Sqrt(1-3*u)
}

// stToIJ converts an st coordinate in [0,1] to a leaf-resolution integer.
func stToIJ(s float64) int {
	i := int(math.Floor(float64(maxSize) * s))
	if i < 0 {
		return 0
	}
	if i > maxSize-1 {
		return maxSize - 1
	}
	return i
}
