package s2cell

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"openflame/internal/geo"
)

func randLatLng(rng *rand.Rand) geo.LatLng {
	// Stay away from the exact poles where longitude degenerates.
	return geo.LatLng{Lat: rng.Float64()*170 - 85, Lng: rng.Float64()*360 - 180}
}

func TestLeafLevel(t *testing.T) {
	c := FromLatLng(geo.LatLng{Lat: 40.44, Lng: -79.99})
	if !c.IsValid() {
		t.Fatal("leaf cell invalid")
	}
	if c.Level() != MaxLevel {
		t.Fatalf("leaf level = %d", c.Level())
	}
	if !c.IsLeaf() {
		t.Fatal("IsLeaf false for leaf")
	}
}

func TestFaceCells(t *testing.T) {
	for f := 0; f < 6; f++ {
		c := FromFace(f)
		if !c.IsValid() {
			t.Fatalf("face %d invalid", f)
		}
		if c.Level() != 0 {
			t.Fatalf("face %d level = %d", f, c.Level())
		}
		if c.Face() != f {
			t.Fatalf("face %d reports face %d", f, c.Face())
		}
		if !c.IsFace() {
			t.Fatalf("face %d IsFace false", f)
		}
	}
}

func TestRoundTripCenterContainment(t *testing.T) {
	// The leaf cell of a point, walked up to any level, must contain the
	// leaf of its own center.
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 500; trial++ {
		ll := randLatLng(rng)
		leaf := FromLatLng(ll)
		for _, level := range []int{0, 5, 10, 16, 20, 25, 30} {
			cell := leaf.Parent(level)
			center := cell.LatLng()
			if !cell.Contains(FromLatLng(center)) {
				t.Fatalf("cell %v does not contain its center %v (point %v)", cell, center, ll)
			}
		}
	}
}

func TestCenterCloseToPoint(t *testing.T) {
	// The center of a point's level-k cell is within ~1 cell diagonal.
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 200; trial++ {
		ll := randLatLng(rng)
		for _, level := range []int{8, 12, 16, 20} {
			c := FromLatLngLevel(ll, level)
			d := geo.DistanceMeters(ll, c.LatLng())
			// Generous: two diagonals (projection distortion at cube corners).
			if d > 3*ApproxEdgeMeters(level) {
				t.Fatalf("level %d center %v m from point", level, d)
			}
		}
	}
}

func TestParentChildInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for trial := 0; trial < 200; trial++ {
		leaf := FromLatLng(randLatLng(rng))
		level := 1 + rng.Intn(MaxLevel-1)
		c := leaf.Parent(level)
		parent := c.ImmediateParent()
		if parent.Level() != level-1 {
			t.Fatalf("parent level = %d, want %d", parent.Level(), level-1)
		}
		if !parent.Contains(c) {
			t.Fatal("parent does not contain child")
		}
		found := false
		for _, ch := range parent.Children() {
			if ch.Level() != level {
				t.Fatalf("child level = %d", ch.Level())
			}
			if !parent.Contains(ch) {
				t.Fatal("parent does not contain enumerated child")
			}
			if ch == c {
				found = true
			}
		}
		if !found {
			t.Fatal("cell not among its parent's children")
		}
	}
}

func TestChildrenDisjointAndCoverParent(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	for trial := 0; trial < 100; trial++ {
		c := FromLatLng(randLatLng(rng)).Parent(5 + rng.Intn(20))
		kids := c.Children()
		// Hilbert-ordered children partition the parent's leaf range.
		if kids[0].RangeMin() != c.RangeMin() {
			t.Fatal("first child range does not start at parent range")
		}
		if kids[3].RangeMax() != c.RangeMax() {
			t.Fatal("last child range does not end at parent range")
		}
		for i := 0; i < 3; i++ {
			if uint64(kids[i].RangeMax())+2 != uint64(kids[i+1].RangeMin()) {
				t.Fatalf("children %d and %d not contiguous", i, i+1)
			}
			if kids[i].Intersects(kids[i+1]) {
				t.Fatal("siblings intersect")
			}
		}
	}
}

func TestContainsIsPrefixRelation(t *testing.T) {
	a := FromLatLngLevel(geo.LatLng{Lat: 40.44, Lng: -79.99}, 10)
	inside := FromLatLng(a.LatLng())
	if !a.Contains(inside) {
		t.Fatal("cell does not contain leaf at its center")
	}
	outside := FromLatLng(geo.LatLng{Lat: -40, Lng: 100})
	if a.Contains(outside) {
		t.Fatal("cell contains antipodal leaf")
	}
	if !a.Contains(a) {
		t.Fatal("cell does not contain itself")
	}
}

func TestTokenRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	for trial := 0; trial < 500; trial++ {
		c := FromLatLng(randLatLng(rng)).Parent(rng.Intn(MaxLevel + 1))
		tok := c.Token()
		if got := FromToken(tok); got != c {
			t.Fatalf("token round trip: %v -> %q -> %v", c, tok, got)
		}
		if len(tok) > 16 || len(tok) == 0 {
			t.Fatalf("bad token %q", tok)
		}
	}
	if FromToken("") != 0 || FromToken("X") != 0 || FromToken("zz") != 0 ||
		FromToken("00112233445566778899") != 0 {
		t.Fatal("invalid tokens should parse to 0")
	}
	if (CellID(0)).Token() != "X" {
		t.Fatal("zero token should be X")
	}
}

func TestTokenProperty(t *testing.T) {
	f := func(lat, lng float64, lvl uint8) bool {
		ll := geo.LatLng{Lat: math.Mod(lat, 85), Lng: math.Mod(lng, 180)}
		c := FromLatLngLevel(ll, int(lvl)%31)
		return FromToken(c.Token()) == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSpatialLocality(t *testing.T) {
	// Two points 10m apart share a deep common ancestor; points 1000km
	// apart do not share deep ancestors.
	a := geo.LatLng{Lat: 40.44, Lng: -79.99}
	b := geo.Offset(a, 10, 45)
	far := geo.Offset(a, 1e6, 45)
	ca, cb, cf := FromLatLng(a), FromLatLng(b), FromLatLng(far)
	deep := 0
	for l := 0; l <= MaxLevel; l++ {
		if ca.Parent(l) == cb.Parent(l) {
			deep = l
		} else {
			break
		}
	}
	if deep < 15 {
		t.Fatalf("10m-apart points diverge at level %d, expected >= 15", deep)
	}
	for l := 8; l <= MaxLevel; l++ {
		if ca.Parent(l) == cf.Parent(l) {
			t.Fatalf("1000km-apart points share level-%d cell", l)
		}
	}
}

func TestCellBoundContainsVerticesAndCenter(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 200; trial++ {
		c := FromLatLng(randLatLng(rng)).Parent(2 + rng.Intn(25))
		b := c.Bound()
		if !b.Contains(c.LatLng()) {
			t.Fatalf("bound %v missing center of %v", b, c)
		}
		for _, v := range c.Vertices() {
			if !b.Contains(v) {
				t.Fatalf("bound %v missing vertex %v of %v", b, v, c)
			}
		}
	}
}

func TestBoundContainsInteriorPoints(t *testing.T) {
	// Sample random points, find their cell at level 12, check the point is
	// within the (conservative) bound.
	rng := rand.New(rand.NewSource(48))
	for trial := 0; trial < 500; trial++ {
		ll := randLatLng(rng)
		c := FromLatLngLevel(ll, 12)
		if !c.Bound().Contains(ll) {
			t.Fatalf("bound of %v does not contain generating point %v", c, ll)
		}
	}
}

func TestEdgeNeighbors(t *testing.T) {
	c := FromLatLngLevel(geo.LatLng{Lat: 40.44, Lng: -79.99}, 15)
	ns := c.EdgeNeighbors()
	if len(ns) != 4 {
		t.Fatalf("interior cell has %d neighbors", len(ns))
	}
	for _, n := range ns {
		if n.Level() != 15 {
			t.Fatalf("neighbor level %d", n.Level())
		}
		if n == c {
			t.Fatal("cell is its own neighbor")
		}
		// Neighbor centers are 1-2 edge lengths away.
		d := geo.DistanceMeters(c.LatLng(), n.LatLng())
		if d > 3*ApproxEdgeMeters(15) {
			t.Fatalf("neighbor center %v m away", d)
		}
	}
}

func TestAncestorChain(t *testing.T) {
	c := FromLatLngLevel(geo.LatLng{Lat: 40.44, Lng: -79.99}, 20)
	chain := c.AncestorChain(10)
	if len(chain) != 11 {
		t.Fatalf("chain length %d", len(chain))
	}
	for i, a := range chain {
		if a.Level() != 10+i {
			t.Fatalf("chain[%d] level = %d", i, a.Level())
		}
		if !a.Contains(c) {
			t.Fatalf("ancestor %v does not contain %v", a, c)
		}
	}
	// Clamping.
	if got := c.AncestorChain(25); len(got) != 1 || got[0] != c {
		t.Fatalf("over-deep chain = %v", got)
	}
	if got := c.AncestorChain(-5); len(got) != 21 {
		t.Fatalf("negative fromLevel chain length = %d", len(got))
	}
}

func TestApproxEdgeMeters(t *testing.T) {
	if e0 := ApproxEdgeMeters(0); math.Abs(e0-math.Pi*geo.EarthRadiusMeters/2) > 1 {
		t.Fatalf("level 0 edge = %v", e0)
	}
	for l := 1; l <= 30; l++ {
		if ApproxEdgeMeters(l) >= ApproxEdgeMeters(l-1) {
			t.Fatal("edge length not decreasing")
		}
	}
	if LevelForEdgeMeters(1000) < 10 || LevelForEdgeMeters(1000) > 16 {
		t.Fatalf("LevelForEdgeMeters(1000) = %d", LevelForEdgeMeters(1000))
	}
	if ApproxEdgeMeters(LevelForEdgeMeters(50)) > 50 {
		t.Fatal("LevelForEdgeMeters returned too-coarse level")
	}
}

func TestHilbertContinuity(t *testing.T) {
	// Consecutive leaf-range positions within a face correspond to adjacent
	// cells: sample sequential cells at a level and check center distance.
	level := 10
	start := FromLatLngLevel(geo.LatLng{Lat: 40.44, Lng: -79.99}, level)
	prev := start
	step := uint64(lsbForLevel(level)) * 2
	for i := 0; i < 50; i++ {
		next := CellID(uint64(prev) + step)
		if next.Face() != prev.Face() {
			break // walked off the face
		}
		d := geo.DistanceMeters(prev.LatLng(), next.LatLng())
		if d > 2.5*ApproxEdgeMeters(level) {
			t.Fatalf("consecutive cells %d apart: %v m (edge %v m)", i, d, ApproxEdgeMeters(level))
		}
		prev = next
	}
}

func TestSTUVRoundTrip(t *testing.T) {
	f := func(s float64) bool {
		s = math.Abs(math.Mod(s, 1))
		got := uvToST(stToUV(s))
		return math.Abs(got-s) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFaceUVRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(49))
	for trial := 0; trial < 1000; trial++ {
		ll := randLatLng(rng)
		p := latLngToXYZ(ll)
		face, u, v := xyzToFaceUV(p)
		if u < -1.0001 || u > 1.0001 || v < -1.0001 || v > 1.0001 {
			t.Fatalf("uv out of range: %v %v", u, v)
		}
		back := xyzToLatLng(faceUVToXYZ(face, u, v))
		if geo.DistanceMeters(ll, back) > 0.01 {
			t.Fatalf("face/uv round trip error: %v vs %v", ll, back)
		}
	}
}

func TestInvalidCells(t *testing.T) {
	if CellID(0).IsValid() {
		t.Fatal("zero valid")
	}
	if (CellID(7) << posBits).IsValid() {
		t.Fatal("face 7 valid")
	}
	// Odd trailing-zero count is malformed.
	if CellID(uint64(FromFace(0)) << 1).IsValid() {
		t.Fatal("odd-shifted cell valid")
	}
}

func TestBoundRectsAntimeridian(t *testing.T) {
	// A cell straddling the antimeridian must split into two rects that
	// contain points on both sides — and not span the whole globe.
	nearAM := geo.LatLng{Lat: 0, Lng: 179.9999}
	c := FromLatLngLevel(nearAM, 8)
	rects := c.BoundRects()
	contains := func(ll geo.LatLng) bool {
		for _, r := range rects {
			if r.Contains(ll) {
				return true
			}
		}
		return false
	}
	if !contains(nearAM) {
		t.Fatalf("bound rects %v miss the generating point", rects)
	}
	other := geo.LatLng{Lat: 0, Lng: -179.9999}
	if FromLatLngLevel(other, 8) == c && !contains(other) {
		t.Fatalf("cell contains west-side point but bounds do not")
	}
	// Must not cover Greenwich.
	if contains(geo.LatLng{Lat: 0, Lng: 0}) {
		t.Fatalf("antimeridian cell bounds cover the prime meridian: %v", rects)
	}
}

func TestBoundRectsPole(t *testing.T) {
	// The cell at the north pole reports a full-longitude bound reaching
	// the pole.
	c := FromLatLngLevel(geo.LatLng{Lat: 89.99, Lng: 0}, 4)
	rects := c.BoundRects()
	found := false
	for _, r := range rects {
		if r.MaxLat >= 89.9 && r.Contains(geo.LatLng{Lat: 89.99, Lng: 135}) {
			found = true
		}
	}
	if !found {
		// The pole cell may not be this one at level 4 if the point maps
		// to a non-center cell; only assert the generating point is inside.
		ok := false
		for _, r := range rects {
			if r.Contains(geo.LatLng{Lat: 89.99, Lng: 0}) {
				ok = true
			}
		}
		if !ok {
			t.Fatalf("pole-adjacent cell bounds %v miss the point", rects)
		}
	}
}
