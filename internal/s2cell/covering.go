package s2cell

import (
	"sort"

	"openflame/internal/geo"
)

// Region is a shape on the sphere that a covering approximates. The two
// predicates operate on latitude/longitude rectangles because cell bounds
// are rectangles; they may be conservative (returning true when uncertain)
// but must never report false for a rectangle that truly intersects or is
// contained.
type Region interface {
	// Bound returns a rectangle containing the region.
	Bound() geo.Rect
	// IntersectsRect reports whether the region may intersect r.
	IntersectsRect(r geo.Rect) bool
	// ContainsRect reports whether the region definitely contains all of r.
	ContainsRect(r geo.Rect) bool
}

// RectRegion adapts a geo.Rect to the Region interface.
type RectRegion struct{ Rect geo.Rect }

// Bound implements Region.
func (r RectRegion) Bound() geo.Rect { return r.Rect }

// IntersectsRect implements Region.
func (r RectRegion) IntersectsRect(q geo.Rect) bool { return r.Rect.Intersects(q) }

// ContainsRect implements Region.
func (r RectRegion) ContainsRect(q geo.Rect) bool { return r.Rect.ContainsRect(q) }

// CapRegion adapts a geo.Cap to the Region interface.
type CapRegion struct{ Cap geo.Cap }

// Bound implements Region.
func (c CapRegion) Bound() geo.Rect { return c.Cap.Bound() }

// IntersectsRect implements Region.
func (c CapRegion) IntersectsRect(r geo.Rect) bool {
	if r.IsEmpty() {
		return false
	}
	// Distance from cap center to the closest point of the rectangle.
	lat := clamp(c.Cap.Center.Lat, r.MinLat, r.MaxLat)
	lng := clamp(c.Cap.Center.Lng, r.MinLng, r.MaxLng)
	return geo.DistanceMeters(c.Cap.Center, geo.LatLng{Lat: lat, Lng: lng}) <= c.Cap.RadiusMeters
}

// ContainsRect implements Region.
func (c CapRegion) ContainsRect(r geo.Rect) bool {
	if r.IsEmpty() {
		return true
	}
	for _, v := range r.Vertices() {
		if !c.Cap.Contains(v) {
			return false
		}
	}
	return true
}

// PolygonRegion adapts a geo.Polygon to the Region interface.
type PolygonRegion struct{ Polygon geo.Polygon }

// Bound implements Region.
func (p PolygonRegion) Bound() geo.Rect { return p.Polygon.Bound() }

// IntersectsRect implements Region.
func (p PolygonRegion) IntersectsRect(r geo.Rect) bool {
	if !p.Polygon.Bound().Intersects(r) {
		return false
	}
	// Any polygon vertex inside the rect?
	for _, v := range p.Polygon.Vertices {
		if r.Contains(v) {
			return true
		}
	}
	// Any rect corner inside the polygon?
	for _, v := range r.Vertices() {
		if p.Polygon.Contains(v) {
			return true
		}
	}
	// Any edge crossing?
	rv := r.Vertices()
	n := len(p.Polygon.Vertices)
	for i := 0; i < n; i++ {
		a := p.Polygon.Vertices[i]
		b := p.Polygon.Vertices[(i+1)%n]
		for j := 0; j < 4; j++ {
			if segmentsCross(a, b, rv[j], rv[(j+1)%4]) {
				return true
			}
		}
	}
	return false
}

// ContainsRect implements Region.
func (p PolygonRegion) ContainsRect(r geo.Rect) bool {
	if r.IsEmpty() {
		return true
	}
	for _, v := range r.Vertices() {
		if !p.Polygon.Contains(v) {
			return false
		}
	}
	// All corners inside and no edge crossing means full containment for
	// simple polygons.
	rv := r.Vertices()
	n := len(p.Polygon.Vertices)
	for i := 0; i < n; i++ {
		a := p.Polygon.Vertices[i]
		b := p.Polygon.Vertices[(i+1)%n]
		for j := 0; j < 4; j++ {
			if segmentsCross(a, b, rv[j], rv[(j+1)%4]) {
				return false
			}
		}
	}
	return true
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// segmentsCross reports whether segments ab and cd properly intersect,
// treating lat/lng as planar coordinates.
func segmentsCross(a, b, c, d geo.LatLng) bool {
	o1 := orient(a, b, c)
	o2 := orient(a, b, d)
	o3 := orient(c, d, a)
	o4 := orient(c, d, b)
	return o1*o2 < 0 && o3*o4 < 0
}

func orient(a, b, c geo.LatLng) float64 {
	return (b.Lng-a.Lng)*(c.Lat-a.Lat) - (b.Lat-a.Lat)*(c.Lng-a.Lng)
}

// Covering returns cells at exactly the given level whose bounds intersect
// the region. If the result would exceed maxCells (<=0 means unlimited), the
// level is coarsened until it fits, so the result may be at a coarser level
// than requested but never exceeds maxCells.
func Covering(r Region, level, maxCells int) []CellID {
	for l := level; l >= 0; l-- {
		if cells, ok := coverAtLevel(r, l, maxCells); ok {
			return cells
		}
	}
	cells, _ := coverAtLevel(r, 0, 0)
	return cells
}

// coverAtLevel returns the level-l covering and whether it fit within
// maxCells (maxCells <= 0 disables the limit).
func coverAtLevel(r Region, level, maxCells int) ([]CellID, bool) {
	var out []CellID
	var descend func(c CellID) bool
	descend = func(c CellID) bool {
		hit := false
		for _, b := range c.BoundRects() {
			if r.IntersectsRect(b) {
				hit = true
				break
			}
		}
		if !hit {
			return true
		}
		if c.Level() == level {
			out = append(out, c)
			return maxCells <= 0 || len(out) <= maxCells
		}
		for _, ch := range c.Children() {
			if !descend(ch) {
				return false
			}
		}
		return true
	}
	for f := 0; f < numFaces; f++ {
		if !descend(FromFace(f)) {
			return nil, false
		}
	}
	sortCells(out)
	return out, true
}

// RegistrationCovering returns a mixed-level covering between minLevel and
// maxLevel: the region is covered at maxLevel, cells fully inside the region
// are merged upward (four present siblings collapse into their parent, no
// coarser than minLevel). This is the set of cells a map server registers in
// the discovery DNS.
func RegistrationCovering(r Region, minLevel, maxLevel int) []CellID {
	if minLevel > maxLevel {
		minLevel = maxLevel
	}
	cells, _ := coverAtLevel(r, maxLevel, 0)
	return normalize(cells, minLevel)
}

// normalize repeatedly replaces complete sibling quadruples with their
// parent, never going coarser than minLevel.
func normalize(cells []CellID, minLevel int) []CellID {
	sortCells(cells)
	for {
		merged := false
		var out []CellID
		for i := 0; i < len(cells); {
			c := cells[i]
			if c.Level() > minLevel && i+3 < len(cells) {
				parent := c.ImmediateParent()
				kids := parent.Children()
				if cells[i] == kids[0] && cells[i+1] == kids[1] &&
					cells[i+2] == kids[2] && cells[i+3] == kids[3] {
					out = append(out, parent)
					i += 4
					merged = true
					continue
				}
			}
			out = append(out, c)
			i++
		}
		cells = out
		if !merged {
			return cells
		}
	}
}

func sortCells(cells []CellID) {
	sort.Slice(cells, func(i, j int) bool { return cells[i] < cells[j] })
}

// CellUnionContains reports whether any cell in the (normalized or not)
// union contains the given cell.
func CellUnionContains(union []CellID, c CellID) bool {
	for _, u := range union {
		if u.Contains(c) {
			return true
		}
	}
	return false
}

// CellUnionIntersects reports whether any cell in the union intersects c.
func CellUnionIntersects(union []CellID, c CellID) bool {
	for _, u := range union {
		if u.Intersects(c) {
			return true
		}
	}
	return false
}
