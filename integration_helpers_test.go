package openflame

import (
	"testing"

	"openflame/internal/align"
	"openflame/internal/centralized"
	"openflame/internal/core"
	"openflame/internal/geo"
	"openflame/internal/wire"
	"openflame/internal/worldgen"
)

var integrationCorner = geo.LatLng{Lat: 40.4400, Lng: -79.9990}

// federatedAnswer deploys the federation and returns the street→shelf route
// cost and the number of search hits for store 0's last product.
func federatedAnswer(t *testing.T, world *worldgen.World) (routeCost float64, hits int) {
	t.Helper()
	fed, err := core.DeployWorld(world)
	if err != nil {
		t.Fatal(err)
	}
	defer fed.Close()
	c := fed.NewClient()
	store := world.Stores[0]
	product := store.Products[len(store.Products)-1]
	entrance := store.Correspondences[len(store.Correspondences)-1].World
	results := c.Search(product, entrance, 10)
	if len(results) == 0 {
		t.Fatal("federated search empty")
	}
	route, err := c.Route(integrationCorner, results[0].Position)
	if err != nil {
		t.Fatal(err)
	}
	return route.CostSeconds, len(results)
}

// centralizedAnswer runs the same queries against the Figure-1 baseline.
func centralizedAnswer(t *testing.T, world *worldgen.World) (routeCost float64, hits int) {
	t.Helper()
	sources := []centralized.Source{{Map: world.Outdoor}}
	for _, s := range world.Stores {
		ga, err := align.FitGeo(s.Correspondences)
		if err != nil {
			t.Fatal(err)
		}
		sources = append(sources, centralized.Source{Map: s.Map, Alignment: ga})
	}
	sys, err := centralized.Build(sources, nil)
	if err != nil {
		t.Fatal(err)
	}
	store := world.Stores[0]
	product := store.Products[len(store.Products)-1]
	entrance := store.Correspondences[len(store.Correspondences)-1].World
	resp := sys.Search(wire.SearchRequest{Query: product, Near: &entrance,
		MaxDistanceMeters: 1000, Limit: 10})
	if len(resp.Results) == 0 {
		t.Fatal("centralized search empty")
	}
	route := sys.Route(wire.RouteRequest{From: integrationCorner, To: resp.Results[0].Position})
	if !route.Found {
		t.Fatal("centralized route missing")
	}
	return route.CostSeconds, len(resp.Results)
}
