package openflame

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"openflame/internal/core"
	"openflame/internal/geo"
	"openflame/internal/s2cell"
	"openflame/internal/search"
	"openflame/internal/wire"
)

// ================= E13: concurrent client fan-out ========================
// §5.2 makes the client the federation's aggregation point: one search
// reaches every covering server. E13 measures the end-to-end wall clock of
// that fan-out, sequential (MaxConcurrency=1, the pre-refactor client)
// versus concurrent (bounded pool), over federations of 1/4/16 members each
// answering after a fixed simulated service delay. Expected shape:
// sequential grows linearly with federation size, concurrent stays at
// ~one service delay until the pool saturates.

const e13Delay = 5 * time.Millisecond

// e13Federation registers n delayed HTTP search doubles on one cell.
func e13Federation(b *testing.B, n int) (*core.Federation, geo.LatLng) {
	b.Helper()
	fed, err := core.NewFederation()
	if err != nil {
		b.Fatal(err)
	}
	pos := geo.LatLng{Lat: 40.4433, Lng: -79.9436}
	token := s2cell.FromLatLng(pos).Parent(16).Token()
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("bench-srv-%02d", i)
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			_, _ = io.Copy(io.Discard, r.Body)
			t := time.NewTimer(e13Delay)
			defer t.Stop()
			select {
			case <-t.C:
			case <-r.Context().Done():
				return
			}
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(wire.SearchResponse{Results: []search.Result{
				{Name: "hit", Position: pos, TextScore: 1, Score: 1, Source: name},
			}})
		}))
		b.Cleanup(ts.Close)
		if err := fed.Registry.Register(wire.Info{
			Name: name, Coverage: []string{token}, Services: []wire.Service{wire.SvcSearch},
		}, ts.URL); err != nil {
			b.Fatal(err)
		}
	}
	return fed, pos
}

func BenchmarkE13_FanoutLatency(b *testing.B) {
	for _, servers := range []int{1, 4, 16} {
		fed, pos := e13Federation(b, servers)
		for _, mode := range []struct {
			name        string
			concurrency int
		}{
			{"sequential", 1},
			{"concurrent", 0}, // default bounded pool
		} {
			b.Run(fmt.Sprintf("servers=%d/%s", servers, mode.name), func(b *testing.B) {
				c := fed.NewClient()
				c.MaxConcurrency = servers // sequential overridden below
				if mode.concurrency == 1 {
					c.MaxConcurrency = 1
				}
				c.SearchRadiusMeters = 100 // small covering: measure fan-out, not covering enumeration
				// Prime discovery and connections once.
				if got := c.Search("hit", pos, 2*servers); len(got) == 0 {
					b.Fatal("no results")
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if got := c.Search("hit", pos, 2*servers); len(got) == 0 {
						b.Fatal("no results")
					}
				}
				b.ReportMetric(float64(servers), "servers")
			})
		}
	}
}
