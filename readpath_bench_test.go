package openflame

import (
	"testing"

	"openflame/internal/mapserver"
	"openflame/internal/wire"
	"openflame/internal/worldgen"
)

// ================= E15: server-side read path ============================
// PR 3 moves the caching story server-side: a generation-keyed query
// result cache (hot repeated queries compute once per map generation) and
// a batched wire API (a client's sub-queries to one server share a round
// trip). E15 measures both: cached vs uncached hot-query service time on
// one server, and HTTP round trips per client Geocode with and without
// /v1/batch.

func BenchmarkE15_HotQuery(b *testing.B) {
	city := worldgen.GenCity(worldgen.DefaultCityParams())
	for _, mode := range []struct {
		name    string
		entries int
	}{
		{"uncached", 0},
		{"cached", 4096},
	} {
		srv, err := mapserver.New(mapserver.Config{
			Name: "city", Map: city, QueryCacheEntries: mode.entries,
		})
		if err != nil {
			b.Fatal(err)
		}
		a := srv.Geocode(wire.GeocodeRequest{Query: "1st Street", Limit: 1}).Results[0].Position
		z := srv.Geocode(wire.GeocodeRequest{Query: "9th Street", Limit: 1}).Results[0].Position
		b.Run("search/"+mode.name, func(b *testing.B) {
			req := wire.SearchRequest{Query: "3rd Street", Limit: 10}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if len(srv.Search(req).Results) == 0 {
					b.Fatal("search found nothing")
				}
			}
		})
		b.Run("route/"+mode.name, func(b *testing.B) {
			req := wire.RouteRequest{From: a, To: z}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if !srv.Route(req).Found {
					b.Fatal("route not found")
				}
			}
		})
	}
}

func BenchmarkE15_BatchRoundTrips(b *testing.B) {
	f := getFixtures(b)
	store := f.world.Stores[0]
	address := store.Products[0] + " shelf, " + store.Map.Name
	for _, mode := range []struct {
		name  string
		batch bool
	}{
		{"percall", false},
		{"batched", true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			c := f.fed.NewClient()
			c.UseBatch = mode.batch
			req0 := c.RequestCount()
			for i := 0; i < b.N; i++ {
				if _, err := c.Geocode(address); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(c.RequestCount()-req0)/float64(b.N), "httpreqs/op")
		})
	}
}
