package openflame

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"openflame/internal/align"
	"openflame/internal/client"
	"openflame/internal/discovery"
	"openflame/internal/dns"
	"openflame/internal/geo"
	"openflame/internal/mapserver"
	"openflame/internal/worldgen"
)

// TestFullStackOverRealSockets runs the entire architecture with nothing
// simulated in-process: authoritative DNS servers on real loopback UDP/TCP
// sockets (root zone delegating the spatial zone with SRV glue for the
// ephemeral port), map servers on real HTTP listeners, and a client whose
// resolver speaks actual wire-format DNS.
func TestFullStackOverRealSockets(t *testing.T) {
	world := worldgen.GenWorld(worldgen.DefaultWorldParams())

	// --- spatial zone on a real DNS server -------------------------------
	locZone := dns.NewZone(discovery.DefaultSuffix)
	locSrv, err := dns.NewServer(locZone, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer locSrv.Close()
	_, locPortStr, _ := net.SplitHostPort(locSrv.Addr())
	var locPort int
	fmt.Sscanf(locPortStr, "%d", &locPort)

	// --- root zone delegating it ------------------------------------------
	rootZone := dns.NewZone("flame.arpa.")
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(rootZone.Add(dns.RR{Name: discovery.DefaultSuffix, Type: dns.TypeNS, TTL: 300,
		Target: "ns." + discovery.DefaultSuffix}))
	must(rootZone.Add(dns.RR{Name: "ns." + discovery.DefaultSuffix, Type: dns.TypeA, TTL: 300,
		IP: net.IPv4(127, 0, 0, 1)}))
	must(rootZone.Add(dns.RR{Name: "ns." + discovery.DefaultSuffix, Type: dns.TypeSRV, TTL: 300,
		SRV: &dns.SRVData{Port: uint16(locPort), Target: "ns." + discovery.DefaultSuffix}}))
	rootSrv, err := dns.NewServer(rootZone, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer rootSrv.Close()

	// --- map servers on real HTTP listeners -------------------------------
	registry := discovery.NewRegistry(locZone, discovery.DefaultSuffix)
	citySrv, err := mapserver.New(mapserver.Config{Name: "world-map", Map: world.Outdoor, UseCH: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := citySrv.WaitCH(context.Background()); err != nil {
		t.Fatal(err)
	}
	cityHTTP := httptest.NewServer(citySrv.Handler())
	defer cityHTTP.Close()
	must(registry.Register(citySrv.Info(), cityHTTP.URL))

	store := world.Stores[0]
	ga, err := align.FitGeo(store.Correspondences)
	if err != nil {
		t.Fatal(err)
	}
	storeSrv, err := mapserver.New(mapserver.Config{
		Name: "corner-grocery", Map: store.Map, Alignment: ga,
		Beacons: store.Beacons, Fiducials: store.Fiducials,
	})
	if err != nil {
		t.Fatal(err)
	}
	storeHTTP := httptest.NewServer(storeSrv.Handler())
	defer storeHTTP.Close()
	must(registry.Register(storeSrv.Info(), storeHTTP.URL))

	// --- client with a real UDP resolver -----------------------------------
	resolver := dns.NewResolver(dns.UDPExchanger{}, []dns.RootHint{
		{Name: "root.", Addr: rootSrv.Addr()}})
	disc := discovery.NewClient(resolver, discovery.DefaultSuffix)
	c := client.New(disc, http.DefaultClient)
	c.WorldURL = cityHTTP.URL

	entrance := store.Correspondences[len(store.Correspondences)-1].World

	// Discovery over the wire.
	anns := c.Discover(entrance)
	names := map[string]bool{}
	for _, a := range anns {
		names[a.Name] = true
	}
	if !names["world-map"] || !names["corner-grocery"] {
		t.Fatalf("UDP discovery = %v", names)
	}

	// Federated search.
	product := store.Products[0]
	results := c.Search(product, entrance, 5)
	if len(results) == 0 || !strings.Contains(results[0].Name, product) {
		t.Fatalf("search = %v", results)
	}

	// Stitched route street → shelf.
	from := geo.LatLng{Lat: 40.4400, Lng: -79.9990}
	route, err := c.Route(from, results[0].Position)
	if err != nil {
		t.Fatal(err)
	}
	if route.ServersUsed < 2 {
		t.Fatalf("route used %d servers", route.ServersUsed)
	}

	// DNS really went over the wire.
	if rootSrv.QueryCount() == 0 || locSrv.QueryCount() == 0 {
		t.Fatalf("DNS servers unused: root=%d loc=%d", rootSrv.QueryCount(), locSrv.QueryCount())
	}
	// And caching kept the load sane: another client action should add few
	// root queries (the delegation is cached).
	before := rootSrv.QueryCount()
	c.Search(product, entrance, 5)
	if rootSrv.QueryCount() > before {
		t.Fatalf("root server re-queried despite cache: %d -> %d", before, rootSrv.QueryCount())
	}
}

// TestCentralizedAndFederatedAgree cross-checks the two architectures on
// the same world: same search hits, same route cost (stretch 1 when the
// portal is the only crossing).
func TestCentralizedAndFederatedAgree(t *testing.T) {
	// Covered in detail by bench E5/E6; this is the correctness assertion
	// form, run as part of the normal test suite.
	world := worldgen.GenWorld(worldgen.DefaultWorldParams())
	fedRoute, fedHits := federatedAnswer(t, world)
	cenRoute, cenHits := centralizedAnswer(t, world)
	if fedHits == 0 || fedHits != cenHits {
		t.Fatalf("hit counts: federated %d vs centralized %d", fedHits, cenHits)
	}
	if fedRoute <= 0 || cenRoute <= 0 {
		t.Fatal("missing route")
	}
	stretch := fedRoute / cenRoute
	if stretch < 0.999 || stretch > 1.05 {
		t.Fatalf("stretch = %v", stretch)
	}
}
