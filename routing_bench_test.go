// E18: routing raw speed — the contraction-hierarchy serving paths
// measured head-to-head against the bidirectional-Dijkstra fallback on a
// graph ~20× the E12 central graph (2,500 nodes vs 126). Three point-to-
// point variants (bidirectional baseline, CH with path unpacking, CH
// cost-only) and two matrix variants (per-pair loop vs the bucket-based
// many-to-many query). TestE18BenchArtifact renders the same measurements
// into the machine-readable BENCH_route.json and enforces the speedup
// floors the design claims: CH p2p ≥5× over bidirectional, many-to-many
// matrix ≥10× over the per-pair loop.
package openflame

import (
	"encoding/json"
	"math/rand"
	"os"
	"sync"
	"testing"

	"openflame/internal/geo"
	"openflame/internal/graph"
)

const (
	e18GridN        = 50 // 50×50 = 2,500 nodes; E12's central graph has 126
	e18Pairs        = 128
	e18MatrixPoints = 14 // 14 sources × 14 targets = 196 priced pairs
)

var e18 struct {
	once    sync.Once
	g       *graph.Graph
	ch      *graph.CH
	pairs   [][2]int64
	sources []int64
	targets []int64
}

// e18Fixtures builds the benchmark graph once: a weighted grid with
// integral edge weights (so CH and Dijkstra sums are bit-identical in any
// association order) plus its contraction hierarchy and fixed query sets.
func e18Fixtures() {
	e18.once.Do(func() {
		const n = e18GridN
		rng := rand.New(rand.NewSource(18))
		b := graph.NewBuilder()
		id := func(r, c int) int64 { return int64(r*n + c + 1) }
		for r := 0; r < n; r++ {
			for c := 0; c < n; c++ {
				b.AddNode(id(r, c), geo.LatLng{Lat: 40 + float64(r)*1e-4, Lng: -80 + float64(c)*1e-4})
			}
		}
		w := func() float64 { return float64(20 + rng.Intn(180)) }
		for r := 0; r < n; r++ {
			for c := 0; c < n; c++ {
				if c+1 < n {
					if err := b.AddBidirectional(id(r, c), id(r, c+1), w()); err != nil {
						panic(err)
					}
				}
				if r+1 < n {
					if err := b.AddBidirectional(id(r, c), id(r+1, c), w()); err != nil {
						panic(err)
					}
				}
			}
		}
		e18.g = b.Build()
		e18.ch = graph.BuildCH(e18.g)
		ids := e18.g.NodeIDs()
		e18.pairs = make([][2]int64, e18Pairs)
		for i := range e18.pairs {
			e18.pairs[i] = [2]int64{ids[rng.Intn(len(ids))], ids[rng.Intn(len(ids))]}
		}
		for i := 0; i < e18MatrixPoints; i++ {
			e18.sources = append(e18.sources, ids[rng.Intn(len(ids))])
			e18.targets = append(e18.targets, ids[rng.Intn(len(ids))])
		}
	})
}

func benchE18Bidi(b *testing.B) {
	e18Fixtures()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := e18.pairs[i%len(e18.pairs)]
		if _, err := e18.g.BiDijkstra(p[0], p[1]); err != nil {
			b.Fatal(err)
		}
	}
}

func benchE18CH(b *testing.B) {
	e18Fixtures()
	var buf []int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := e18.pairs[i%len(e18.pairs)]
		path, err := e18.ch.QueryInto(buf[:0], p[0], p[1])
		if err != nil {
			b.Fatal(err)
		}
		buf = path.Nodes
	}
}

func benchE18CHCost(b *testing.B) {
	e18Fixtures()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := e18.pairs[i%len(e18.pairs)]
		if _, err := e18.ch.QueryCost(p[0], p[1]); err != nil {
			b.Fatal(err)
		}
	}
}

func benchE18MatrixPerPair(b *testing.B) {
	e18Fixtures()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// The pre-hierarchy serving loop: one bidirectional query per cell.
		for _, s := range e18.sources {
			for _, t := range e18.targets {
				if _, err := e18.g.BiDijkstra(s, t); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

func benchE18MatrixBucket(b *testing.B) {
	e18Fixtures()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e18.ch.Matrix(e18.sources, e18.targets)
	}
}

func BenchmarkE18_Route(b *testing.B) {
	b.Run("bidirectional", benchE18Bidi)
	b.Run("ch", benchE18CH)
	b.Run("ch-cost", benchE18CHCost)
}

func BenchmarkE18_RouteMatrix(b *testing.B) {
	b.Run("perpair", benchE18MatrixPerPair)
	b.Run("bucket", benchE18MatrixBucket)
}

// TestE18BenchArtifact writes BENCH_route.json (when BENCH_ROUTE_JSON
// names the output path; `make bench-route` sets it) and enforces the
// speedup floors. Skipped in the ordinary test run: full benchmark
// iterations take seconds, and timing assertions belong in dedicated,
// uncontended bench invocations.
func TestE18BenchArtifact(t *testing.T) {
	out := os.Getenv("BENCH_ROUTE_JSON")
	if out == "" {
		t.Skip("set BENCH_ROUTE_JSON=<path> (or run `make bench-route`) to produce the artifact")
	}
	e18Fixtures()
	type result struct {
		Name        string  `json:"name"`
		NsPerOp     float64 `json:"ns_per_op"`
		AllocsPerOp int64   `json:"allocs_per_op"`
	}
	measure := func(name string, fn func(*testing.B)) result {
		r := testing.Benchmark(fn)
		return result{
			Name:        name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
		}
	}
	bidi := measure("route/bidirectional", benchE18Bidi)
	ch := measure("route/ch", benchE18CH)
	chCost := measure("route/ch-cost", benchE18CHCost)
	perPair := measure("matrix/perpair", benchE18MatrixPerPair)
	bucket := measure("matrix/bucket", benchE18MatrixBucket)

	artifact := struct {
		Experiment    string   `json:"experiment"`
		GraphNodes    int      `json:"graph_nodes"`
		GraphEdges    int      `json:"graph_edges"`
		Shortcuts     int      `json:"shortcuts"`
		MatrixPairs   int      `json:"matrix_pairs"`
		Results       []result `json:"results"`
		P2PSpeedup    float64  `json:"p2p_speedup"`
		MatrixSpeedup float64  `json:"matrix_speedup"`
	}{
		Experiment:    "E18",
		GraphNodes:    e18.g.NumNodes(),
		GraphEdges:    e18.g.NumEdges(),
		Shortcuts:     e18.ch.ShortcutCount,
		MatrixPairs:   len(e18.sources) * len(e18.targets),
		Results:       []result{bidi, ch, chCost, perPair, bucket},
		P2PSpeedup:    bidi.NsPerOp / ch.NsPerOp,
		MatrixSpeedup: perPair.NsPerOp / bucket.NsPerOp,
	}
	data, err := json.MarshalIndent(artifact, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("E18: p2p %.1fx (%.0fns vs %.0fns), matrix %.1fx, ch-cost allocs/op=%d",
		artifact.P2PSpeedup, bidi.NsPerOp, ch.NsPerOp, artifact.MatrixSpeedup, chCost.AllocsPerOp)
	if artifact.P2PSpeedup < 5 {
		t.Errorf("CH point-to-point speedup %.2fx < 5x floor", artifact.P2PSpeedup)
	}
	if artifact.MatrixSpeedup < 10 {
		t.Errorf("many-to-many matrix speedup %.2fx < 10x floor", artifact.MatrixSpeedup)
	}
}
