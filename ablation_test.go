// Ablation benchmarks for the design choices DESIGN.md calls out: the DNS
// registration level range (announcement count vs discovery precision),
// the DNS transport (in-memory protocol vs real UDP sockets), and client
// fan-out as the federation grows.
package openflame

import (
	"context"
	"fmt"
	"net"
	"testing"

	"openflame/internal/core"
	"openflame/internal/discovery"
	"openflame/internal/dns"
	"openflame/internal/geo"
	"openflame/internal/mapserver"
	"openflame/internal/s2cell"
	"openflame/internal/wire"
	"openflame/internal/worldgen"
)

// BenchmarkAblation_RegistrationLevels sweeps the finest registration
// level for a store-sized zone: finer cells mean more DNS records but less
// over-discovery (fraction of nearby-but-outside points that still find
// the store).
func BenchmarkAblation_RegistrationLevels(b *testing.B) {
	entrance := geo.LatLng{Lat: 40.4415, Lng: -79.9955}
	zone := s2cell.CapRegion{Cap: geo.Cap{Center: entrance, RadiusMeters: 45}}
	for _, maxLevel := range []int{13, 14, 15, 16, 17} {
		b.Run(fmt.Sprintf("maxLevel=%d", maxLevel), func(b *testing.B) {
			cells := s2cell.RegistrationCovering(zone, 12, maxLevel)
			toks := make([]string, len(cells))
			for i, c := range cells {
				toks[i] = c.Token()
			}
			mem := dns.NewMemExchanger()
			locZone := dns.NewZone(discovery.DefaultSuffix)
			mem.Register("10.0.0.2:53", locZone)
			reg := discovery.NewRegistry(locZone, discovery.DefaultSuffix)
			if err := reg.Register(wire.Info{Name: "store", Coverage: toks}, "http://store"); err != nil {
				b.Fatal(err)
			}
			res := dns.NewResolver(mem, []dns.RootHint{{Name: "ns.", Addr: "10.0.0.2:53"}})
			disc := discovery.NewClient(res, discovery.DefaultSuffix)
			disc.MaxLevel = maxLevel

			// Over-discovery: points 100-200m away that still find the store.
			over, total := 0, 0
			for brg := 0.0; brg < 360; brg += 30 {
				for _, d := range []float64{100, 150, 200} {
					p := geo.Offset(entrance, d, brg)
					total++
					if len(disc.Discover(p)) > 0 {
						over++
					}
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if got := disc.Discover(entrance); len(got) == 0 {
					b.Fatal("store not discovered at its own entrance")
				}
			}
			b.ReportMetric(float64(len(toks)), "dnsrecords")
			b.ReportMetric(float64(over)/float64(total), "overdiscovery_ratio")
		})
	}
}

// BenchmarkAblation_DNSTransport compares cold discovery through the
// in-memory exchanger against real loopback UDP sockets: the protocol work
// is identical; the socket stack is the difference.
func BenchmarkAblation_DNSTransport(b *testing.B) {
	entrance := geo.LatLng{Lat: 40.4415, Lng: -79.9955}
	cov := s2cell.RegistrationCovering(
		s2cell.CapRegion{Cap: geo.Cap{Center: entrance, RadiusMeters: 45}},
		discovery.DefaultMinLevel, discovery.DefaultMaxLevel)
	toks := make([]string, len(cov))
	for i, c := range cov {
		toks[i] = c.Token()
	}

	b.Run("transport=memory", func(b *testing.B) {
		mem := dns.NewMemExchanger()
		locZone := dns.NewZone(discovery.DefaultSuffix)
		mem.Register("10.0.0.2:53", locZone)
		reg := discovery.NewRegistry(locZone, discovery.DefaultSuffix)
		if err := reg.Register(wire.Info{Name: "store", Coverage: toks}, "http://store"); err != nil {
			b.Fatal(err)
		}
		res := dns.NewResolver(mem, []dns.RootHint{{Name: "ns.", Addr: "10.0.0.2:53"}})
		disc := discovery.NewClient(res, discovery.DefaultSuffix)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res.FlushCache()
			if got := disc.Discover(entrance); len(got) == 0 {
				b.Fatal("not discovered")
			}
		}
	})

	b.Run("transport=udp", func(b *testing.B) {
		locZone := dns.NewZone(discovery.DefaultSuffix)
		reg := discovery.NewRegistry(locZone, discovery.DefaultSuffix)
		if err := reg.Register(wire.Info{Name: "store", Coverage: toks}, "http://store"); err != nil {
			b.Fatal(err)
		}
		srv, err := dns.NewServer(locZone, "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		defer srv.Close()
		_ = net.IPv4zero
		res := dns.NewResolver(dns.UDPExchanger{}, []dns.RootHint{{Name: "ns.", Addr: srv.Addr()}})
		disc := discovery.NewClient(res, discovery.DefaultSuffix)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res.FlushCache()
			if got := disc.Discover(entrance); len(got) == 0 {
				b.Fatal("not discovered")
			}
		}
	})
}

// BenchmarkAblation_FederationScale grows the number of store servers and
// measures a product search near one store: wall time and HTTP fan-out per
// query. Region discovery bounds the fan-out to nearby servers, so cost
// grows with local density, not federation size.
func BenchmarkAblation_FederationScale(b *testing.B) {
	for _, stores := range []int{2, 4, 6} {
		b.Run(fmt.Sprintf("stores=%d", stores), func(b *testing.B) {
			params := worldgen.DefaultWorldParams()
			params.City.BlocksX, params.City.BlocksY = 10, 10
			params.NumStores = stores
			world := worldgen.GenWorld(params)
			fed, err := core.DeployWorld(world)
			if err != nil {
				b.Fatal(err)
			}
			defer fed.Close()
			c := fed.NewClient()
			store := world.Stores[0]
			entrance := store.Correspondences[len(store.Correspondences)-1].World
			product := store.Products[0]
			c.Search(product, entrance, 10) // warm caches
			req0 := c.RequestCount()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if got := c.Search(product, entrance, 10); len(got) == 0 {
					b.Fatal("no results")
				}
			}
			b.ReportMetric(float64(c.RequestCount()-req0)/float64(b.N), "httpreqs/op")
		})
	}
}

// BenchmarkAblation_ServerSideCH toggles contraction hierarchies on the
// world map server and measures the /route code path directly (no HTTP).
func BenchmarkAblation_ServerSideCH(b *testing.B) {
	world := worldgen.GenWorld(worldgen.DefaultWorldParams())
	for _, useCH := range []bool{false, true} {
		b.Run(fmt.Sprintf("ch=%v", useCH), func(b *testing.B) {
			srv, err := mapserver.New(mapserver.Config{Name: "city", Map: world.Outdoor, UseCH: useCH})
			if err != nil {
				b.Fatal(err)
			}
			if err := srv.WaitCH(context.Background()); err != nil {
				b.Fatal(err)
			}
			from := geo.LatLng{Lat: 40.4400, Lng: -79.9990}
			to := geo.Offset(geo.Offset(from, 700, 0), 700, 90)
			req := wire.RouteRequest{From: from, To: to}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if resp := srv.Route(req); !resp.Found {
					b.Fatal("no route")
				}
			}
		})
	}
}
