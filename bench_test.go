// Experiment harness: one benchmark per experiment in DESIGN.md §4
// (E1–E12). The paper (HotOS'25) has two architecture figures and no
// quantitative tables; each benchmark here turns one of its architectural
// claims into a measurement against the deterministic synthetic world.
// EXPERIMENTS.md records representative outputs and the expected shapes.
package openflame

import (
	"fmt"
	"image/color"
	"math/rand"
	"sync"
	"testing"

	"openflame/internal/align"
	"openflame/internal/centralized"
	"openflame/internal/client"
	"openflame/internal/core"
	"openflame/internal/discovery"
	"openflame/internal/geo"
	"openflame/internal/graph"
	"openflame/internal/loc"
	"openflame/internal/mapserver"
	"openflame/internal/osm"
	"openflame/internal/raster"
	"openflame/internal/s2cell"
	"openflame/internal/tiles"
	"openflame/internal/wire"
	"openflame/internal/worldgen"
)

// --- shared fixtures (built once; benches must not mutate them) ---------

type fixtures struct {
	world   *worldgen.World
	fed     *core.Federation
	central *centralized.System
}

var (
	fxOnce sync.Once
	fx     *fixtures
)

func getFixtures(b *testing.B) *fixtures {
	b.Helper()
	fxOnce.Do(func() {
		world := worldgen.GenWorld(worldgen.DefaultWorldParams())
		fed, err := core.DeployWorld(world)
		if err != nil {
			panic(err)
		}
		sources := []centralized.Source{{Map: world.Outdoor}}
		for _, s := range world.Stores {
			ga, err := align.FitGeo(s.Correspondences)
			if err != nil {
				panic(err)
			}
			sources = append(sources, centralized.Source{Map: s.Map, Alignment: ga})
		}
		central, err := centralized.Build(sources, nil)
		if err != nil {
			panic(err)
		}
		fx = &fixtures{world: world, fed: fed, central: central}
	})
	return fx
}

func storeEntrance(s *worldgen.IndoorBundle) geo.LatLng {
	return s.Correspondences[len(s.Correspondences)-1].World
}

var cityCorner = geo.LatLng{Lat: 40.4400, Lng: -79.9990}

// warmClient returns a client with discovery and info caches primed for the
// store-0 scenario.
func warmClient(b *testing.B, f *fixtures) *client.Client {
	b.Helper()
	c := f.fed.NewClient()
	entrance := storeEntrance(f.world.Stores[0])
	c.Discover(entrance)
	c.Search(f.world.Stores[0].Products[0], entrance, 5)
	return c
}

// ========================= E1: centralized baseline ======================
// Figure 1: every service answered from one preprocessed global database.

func BenchmarkE1_CentralizedGeocode(b *testing.B) {
	f := getFixtures(b)
	req := wire.GeocodeRequest{Query: "3rd Street", Limit: 5}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if resp := f.central.Geocode(req); len(resp.Results) == 0 {
			b.Fatal("no results")
		}
	}
}

func BenchmarkE1_CentralizedRGeocode(b *testing.B) {
	f := getFixtures(b)
	req := wire.RGeocodeRequest{Position: storeEntrance(f.world.Stores[0]), MaxMeters: 200}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if resp := f.central.RGeocode(req); !resp.Found {
			b.Fatal("not found")
		}
	}
}

func BenchmarkE1_CentralizedSearch(b *testing.B) {
	f := getFixtures(b)
	near := storeEntrance(f.world.Stores[0])
	req := wire.SearchRequest{Query: f.world.Stores[0].Products[0], Near: &near, Limit: 10}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if resp := f.central.Search(req); len(resp.Results) == 0 {
			b.Fatal("no results")
		}
	}
}

func BenchmarkE1_CentralizedRoute(b *testing.B) {
	f := getFixtures(b)
	req := wire.RouteRequest{From: cityCorner, To: storeEntrance(f.world.Stores[0])}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if resp := f.central.Route(req); !resp.Found {
			b.Fatal("no route")
		}
	}
}

func BenchmarkE1_CentralizedTile(b *testing.B) {
	f := getFixtures(b)
	coord := tiles.FromLatLng(storeEntrance(f.world.Stores[0]), 16)
	if _, err := f.central.Tile(coord); err != nil { // prime the pre-render cache
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := f.central.Tile(coord); err != nil {
			b.Fatal(err)
		}
	}
}

// ===================== E2: federated end-to-end ==========================
// Figure 2: discovery + per-server HTTP round trips + client assembly.

func BenchmarkE2_FederatedSearch(b *testing.B) {
	f := getFixtures(b)
	c := warmClient(b, f)
	near := storeEntrance(f.world.Stores[0])
	query := f.world.Stores[0].Products[0]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if got := c.Search(query, near, 10); len(got) == 0 {
			b.Fatal("no results")
		}
	}
}

func BenchmarkE2_FederatedGeocode(b *testing.B) {
	f := getFixtures(b)
	c := warmClient(b, f)
	address := f.world.Stores[0].Products[0] + " shelf, " + f.world.Stores[0].Map.Name
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := c.Geocode(address); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE2_FederatedRoute(b *testing.B) {
	f := getFixtures(b)
	c := warmClient(b, f)
	to := storeEntrance(f.world.Stores[0])
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := c.Route(cityCorner, to); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE2_FederatedLocalize(b *testing.B) {
	f := getFixtures(b)
	c := warmClient(b, f)
	store := f.world.Stores[0]
	rng := rand.New(rand.NewSource(1))
	truth := geo.Point{X: 5, Y: 10}
	cue := loc.SynthesizeRSSICue(truth, store.Beacons, loc.DefaultRadioModel(), rng)
	coarse := storeEntrance(store)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := c.Localize(coarse, []loc.Cue{cue}, coarse, 35); !ok {
			b.Fatal("no fix")
		}
	}
}

func BenchmarkE2_FederatedTile(b *testing.B) {
	f := getFixtures(b)
	c := warmClient(b, f)
	entrance := storeEntrance(f.world.Stores[0])
	anns := c.Discover(entrance)
	if len(anns) == 0 {
		b.Fatal("nothing discovered")
	}
	coord := tiles.FromLatLng(entrance, 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := c.GetTilePNG(anns[0].URL, coord.Z, coord.X, coord.Y); err != nil {
			b.Fatal(err)
		}
	}
}

// ================= E3: DNS discovery, cold vs cached =====================
// §5.1: "the system would benefit from a ubiquitous caching mechanism."

func BenchmarkE3_DiscoveryCold(b *testing.B) {
	f := getFixtures(b)
	entrance := storeEntrance(f.world.Stores[0])
	res := f.fed.NewResolver()
	disc := discovery.NewClient(res, discovery.DefaultSuffix)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res.FlushCache()
		if got := disc.Discover(entrance); len(got) == 0 {
			b.Fatal("nothing discovered")
		}
	}
	st := res.Stats()
	b.ReportMetric(float64(st.UpstreamQueries)/float64(b.N), "dnsqueries/op")
}

func BenchmarkE3_DiscoveryWarm(b *testing.B) {
	f := getFixtures(b)
	entrance := storeEntrance(f.world.Stores[0])
	res := f.fed.NewResolver()
	disc := discovery.NewClient(res, discovery.DefaultSuffix)
	disc.Discover(entrance)
	st0 := res.Stats()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := disc.Discover(entrance); len(got) == 0 {
			b.Fatal("nothing discovered")
		}
	}
	st := res.Stats()
	b.ReportMetric(float64(st.UpstreamQueries-st0.UpstreamQueries)/float64(b.N), "dnsqueries/op")
}

func BenchmarkE3_DiscoveryZipfMix(b *testing.B) {
	// A population of query points with Zipf-like popularity: cache hit
	// rate dominates as the resolver warms.
	f := getFixtures(b)
	res := f.fed.NewResolver()
	disc := discovery.NewClient(res, discovery.DefaultSuffix)
	rng := rand.New(rand.NewSource(3))
	zipf := rand.NewZipf(rng, 1.2, 1, 63)
	points := make([]geo.LatLng, 64)
	for i := range points {
		points[i] = geo.Offset(cityCorner, float64(i*13%800), float64(i*37%360))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		disc.Discover(points[zipf.Uint64()])
	}
	st := res.Stats()
	total := st.CacheHits + st.CacheMisses
	if total > 0 {
		b.ReportMetric(float64(st.CacheHits)/float64(total), "cachehit_ratio")
	}
}

// ================= E4: covering size vs cell level =======================
// §5.1: zones are approximated by collections of cells; the level trades
// announcement count against discovery precision.

func BenchmarkE4_Covering(b *testing.B) {
	for _, level := range []int{12, 13, 14, 15, 16} {
		b.Run(fmt.Sprintf("level=%d", level), func(b *testing.B) {
			cap := s2cell.CapRegion{Cap: geo.Cap{
				Center: geo.LatLng{Lat: 40.4415, Lng: -79.9955}, RadiusMeters: 400}}
			var cells []s2cell.CellID
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cells = s2cell.Covering(cap, level, 0)
			}
			b.ReportMetric(float64(len(cells)), "cells")
		})
	}
}

// ================= E5: federated route stretch ===========================
// §5.2: stitched routes vs the centralized optimum.

func BenchmarkE5_RouteStitch(b *testing.B) {
	f := getFixtures(b)
	c := warmClient(b, f)
	store := f.world.Stores[0]
	product := store.Products[len(store.Products)-1]
	shelfResp := f.central.Search(wire.SearchRequest{Query: product, Limit: 1})
	if len(shelfResp.Results) == 0 {
		b.Fatal("no shelf")
	}
	to := shelfResp.Results[0].Position
	optimal := f.central.Route(wire.RouteRequest{From: cityCorner, To: to})
	if !optimal.Found {
		b.Fatal("no optimal route")
	}
	var stretchSum float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		route, err := c.Route(cityCorner, to)
		if err != nil {
			b.Fatal(err)
		}
		stretchSum += route.CostSeconds / optimal.CostSeconds
	}
	b.ReportMetric(stretchSum/float64(b.N), "stretch")
}

// ================= E6: federated search recall vs servers ================
// §5.2: recall reaches 1.0 once every covering server has answered.

func BenchmarkE6_FederatedSearch(b *testing.B) {
	f := getFixtures(b)
	store := f.world.Stores[0]
	near := storeEntrance(store)
	query := store.Products[0]
	// Ground truth: the centralized system's result set.
	truthResp := f.central.Search(wire.SearchRequest{Query: query, Near: &near,
		MaxDistanceMeters: 1000, Limit: 10})
	truth := map[string]bool{}
	for _, r := range truthResp.Results {
		truth[r.Name+r.Position.String()] = true
	}
	if len(truth) == 0 {
		b.Fatal("empty ground truth")
	}
	c := warmClient(b, f)
	maxServers := len(f.fed.Servers)
	for k := 1; k <= maxServers; k++ {
		b.Run(fmt.Sprintf("servers=%d", k), func(b *testing.B) {
			var recallSum float64
			for i := 0; i < b.N; i++ {
				got := c.SearchFanout(query, near, 10, k)
				hit := 0
				for _, r := range got {
					if truth[r.Name+r.Position.String()] {
						hit++
					}
				}
				recallSum += float64(hit) / float64(len(truth))
			}
			b.ReportMetric(recallSum/float64(b.N), "recall")
		})
	}
}

// ================= E7: localization accuracy =============================
// §2/§4: indoors, the store's fingerprint service vs raw GPS.

func BenchmarkE7_Localization(b *testing.B) {
	f := getFixtures(b)
	c := warmClient(b, f)
	store := f.world.Stores[0]
	ga, err := align.FitGeo(store.Correspondences)
	if err != nil {
		b.Fatal(err)
	}
	gps := loc.DefaultGPSModel()
	rng := rand.New(rand.NewSource(7))
	var fpErr, gpsErr float64
	n := 0
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		truth := geo.Point{X: rng.Float64()*30 - 15, Y: rng.Float64() * 20}
		world := ga.ToWorld(truth)
		cue := loc.SynthesizeRSSICue(truth, store.Beacons, loc.DefaultRadioModel(), rng)
		gpsCue, ok := gps.Sample(world, true, rng)
		if !ok {
			continue
		}
		fix, ok := c.Localize(*gpsCue.GPS, []loc.Cue{cue}, *gpsCue.GPS, gps.IndoorSigmaMeters)
		if !ok {
			continue
		}
		fpErr += fix.Local.Dist(truth)
		gpsErr += geo.DistanceMeters(world, *gpsCue.GPS)
		n++
	}
	if n > 0 {
		b.ReportMetric(fpErr/float64(n), "fp_err_m")
		b.ReportMetric(gpsErr/float64(n), "gps_err_m")
	}
}

// ================= E8: tile rendering and stitching ======================

func BenchmarkE8_TileRender(b *testing.B) {
	f := getFixtures(b)
	r := tiles.NewRenderer(f.world.Outdoor, tiles.DefaultStyle())
	coord := tiles.FromLatLng(storeEntrance(f.world.Stores[0]), 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Render(coord)
	}
}

func BenchmarkE8_TileStitch(b *testing.B) {
	f := getFixtures(b)
	store := f.world.Stores[0]
	style := tiles.DefaultStyle()
	coord := tiles.FromLatLng(storeEntrance(store), 17)
	outdoor := tiles.NewRenderer(f.world.Outdoor, style).Render(coord)
	indoor := tiles.NewRenderer(store.Map, style).Render(coord)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tiles.Stitch([]*raster.Canvas{outdoor, indoor},
			[]color.RGBA{style.Background, style.Background})
	}
}

// ================= E9: overlap and fuzzy boundaries ======================
// §3: multiple servers legitimately cover one region; boundary spill-over
// must not hide the responsible server.

func BenchmarkE9_Overlap(b *testing.B) {
	f := getFixtures(b)
	c := f.fed.NewClient()
	store := f.world.Stores[0]
	entrance := storeEntrance(store)
	rng := rand.New(rand.NewSource(9))
	var both, total float64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		// Points scattered around the storefront, inside and outside.
		p := geo.Offset(entrance, rng.Float64()*30, rng.Float64()*360)
		names := map[string]bool{}
		for _, a := range c.Discover(p) {
			names[a.Name] = true
		}
		total++
		storeName := store.PortalID[len("portal-"):]
		if names["world-map"] && names[storeName] {
			both++
		}
	}
	b.ReportMetric(both/total, "both_found_ratio")
}

// ================= E10: auth policy overhead =============================
// §5.3: the per-request cost of user/service/application checks.

func BenchmarkE10_Auth(b *testing.B) {
	store := worldgen.GenStore(worldgen.DefaultStoreParams("Policy Mart",
		geo.LatLng{Lat: 40.4500, Lng: -79.9500}))
	for _, mode := range []string{"off", "on"} {
		var policy *mapserver.Policy
		if mode == "on" {
			policy = &mapserver.Policy{
				Default: mapserver.Rule{},
				PerService: map[wire.Service]mapserver.Rule{
					wire.SvcSearch: {UserDomains: []string{"cmu.edu"}, Apps: []string{"nav"}},
				},
			}
		}
		srv, err := mapserver.New(mapserver.Config{Name: "policy-mart", Map: store.Map, Auth: policy})
		if err != nil {
			b.Fatal(err)
		}
		b.Run("policy="+mode, func(b *testing.B) {
			fed, err := core.NewFederation()
			if err != nil {
				b.Fatal(err)
			}
			defer fed.Close()
			h, err := fed.AddServer(srv)
			if err != nil {
				b.Fatal(err)
			}
			c := fed.NewClient()
			c.User, c.App = "alice@cmu.edu", "nav"
			_ = h
			entrance := storeEntrance(store)
			c.Discover(entrance)
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if got := c.Search(store.Products[0], entrance, 5); len(got) == 0 {
					b.Fatal("no results")
				}
			}
		})
	}
}

// ================= E11: map update scalability ===========================
// §1: federation decouples map management; the centralized pipeline pays a
// global re-preprocess for any constituent change.

func BenchmarkE11_UpdateFederated(b *testing.B) {
	f := getFixtures(b)
	h := f.fed.FindServer("corner-grocery")
	if h == nil {
		h = f.fed.Servers[1]
	}
	shelf := h.Server.Store().Map().FindNodes(func(n *osm.Node) bool {
		return n.Tags.Has(osm.TagProduct)
	})[0]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tags := shelf.Tags.Clone()
		tags[osm.TagProduct] = fmt.Sprintf("rotating stock %d", i)
		if !h.Server.ApplyInventoryUpdate(shelf.ID, tags) {
			b.Fatal("update failed")
		}
	}
}

func BenchmarkE11_UpdateCentralized(b *testing.B) {
	// A dedicated system instance: UpdateAndRebuild mutates state.
	world := worldgen.GenWorld(worldgen.DefaultWorldParams())
	sources := []centralized.Source{{Map: world.Outdoor}}
	for _, s := range world.Stores {
		ga, err := align.FitGeo(s.Correspondences)
		if err != nil {
			b.Fatal(err)
		}
		sources = append(sources, centralized.Source{Map: s.Map, Alignment: ga})
	}
	sys, err := centralized.Build(sources, nil)
	if err != nil {
		b.Fatal(err)
	}
	shelf := world.Stores[0].Map.FindNodes(func(n *osm.Node) bool {
		return n.Tags.Has(osm.TagProduct)
	})[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tags := shelf.Tags.Clone()
		tags[osm.TagProduct] = fmt.Sprintf("rotating stock %d", i)
		if err := sys.UpdateAndRebuild(1, shelf.ID, tags); err != nil {
			b.Fatal(err)
		}
	}
}

// ================= E12: contraction hierarchies ablation =================
// §4.1: the preprocessing the centralized model leans on.

func BenchmarkE12_CH(b *testing.B) {
	f := getFixtures(b)
	g := f.central.Graph()
	ids := g.NodeIDs()
	rng := rand.New(rand.NewSource(12))
	pairs := make([][2]int64, 128)
	for i := range pairs {
		pairs[i] = [2]int64{ids[rng.Intn(len(ids))], ids[rng.Intn(len(ids))]}
	}
	run := func(b *testing.B, q func(a, c int64) (int, error)) {
		settledSum, n := 0, 0
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			p := pairs[i%len(pairs)]
			settled, err := q(p[0], p[1])
			if err != nil {
				continue
			}
			settledSum += settled
			n++
		}
		if n > 0 {
			b.ReportMetric(float64(settledSum)/float64(n), "settled/op")
		}
	}
	b.Run("dijkstra", func(b *testing.B) {
		run(b, func(a, c int64) (int, error) {
			p, err := g.Dijkstra(a, c)
			return p.Settled, err
		})
	})
	b.Run("bidirectional", func(b *testing.B) {
		run(b, func(a, c int64) (int, error) {
			p, err := g.BiDijkstra(a, c)
			return p.Settled, err
		})
	})
	b.Run("ch", func(b *testing.B) {
		ch := graph.BuildCH(g)
		b.ResetTimer()
		run(b, func(a, c int64) (int, error) {
			p, err := ch.Query(a, c)
			return p.Settled, err
		})
	})
}
