package main

import (
	"bufio"
	"net"
	"net/http"
	"runtime"
	"testing"
	"time"

	"openflame/internal/mapserver"
)

func TestOverloadFlagDefaultsAndRoundTrip(t *testing.T) {
	fs, o := newFlagSet("flame-server")
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if o.maxInFlight != -1 || o.maxQueue != 0 {
		t.Fatalf("admission defaults changed: %+v", o)
	}
	if o.queueWait != mapserver.DefaultQueueWait || o.retryAfter != mapserver.DefaultRetryAfter {
		t.Fatalf("queue-wait/retry-after defaults changed: %+v", o)
	}
	if o.maxBodyBytes != mapserver.DefaultMaxBodyBytes || o.maxBatchBodyBytes != mapserver.DefaultMaxBatchBodyBytes {
		t.Fatalf("body-cap defaults changed: %+v", o)
	}
	if o.readHeaderTimeout != 5*time.Second || o.readTimeout != 30*time.Second || o.idleTimeout != 2*time.Minute {
		t.Fatalf("ingest-timeout defaults changed: %+v", o)
	}
	// The -1 sentinel sizes admission to the machine; 0 disables it.
	if got := o.inFlightBound(); got != 4*runtime.GOMAXPROCS(0) {
		t.Fatalf("auto inFlightBound = %d, want %d", got, 4*runtime.GOMAXPROCS(0))
	}
	o.maxInFlight = 0
	if got := o.inFlightBound(); got != 0 {
		t.Fatalf("disabled inFlightBound = %d, want 0", got)
	}
	o.maxInFlight = 7
	if got := o.inFlightBound(); got != 7 {
		t.Fatalf("explicit inFlightBound = %d, want 7", got)
	}

	fs, o = newFlagSet("flame-server")
	err := fs.Parse([]string{
		"-max-inflight", "32", "-max-queue", "64", "-queue-wait", "10ms", "-retry-after", "2s",
		"-max-body-bytes", "2048", "-max-batch-body-bytes", "4096",
		"-read-header-timeout", "1s", "-read-timeout", "5s", "-idle-timeout", "30s",
	})
	if err != nil {
		t.Fatal(err)
	}
	if o.maxInFlight != 32 || o.maxQueue != 64 || o.queueWait != 10*time.Millisecond || o.retryAfter != 2*time.Second {
		t.Fatalf("admission flags lost: %+v", o)
	}
	if o.maxBodyBytes != 2048 || o.maxBatchBodyBytes != 4096 {
		t.Fatalf("body-cap flags lost: %+v", o)
	}
	if o.readHeaderTimeout != time.Second || o.readTimeout != 5*time.Second || o.idleTimeout != 30*time.Second {
		t.Fatalf("ingest-timeout flags lost: %+v", o)
	}
	srv := o.httpServer(http.NotFoundHandler())
	if srv.ReadHeaderTimeout != time.Second || srv.ReadTimeout != 5*time.Second || srv.IdleTimeout != 30*time.Second {
		t.Fatalf("httpServer dropped the timeouts: %+v", srv)
	}
	if srv.WriteTimeout != 0 {
		t.Fatalf("WriteTimeout = %v, want 0 (per-request deadlines belong to the client)", srv.WriteTimeout)
	}
}

// TestSlowlorisConnectionReaped is the slowloris regression: a client that
// opens a connection and trickles (or stops sending) its headers is cut
// off at ReadHeaderTimeout instead of holding server resources forever —
// the exact construction main() serves with.
func TestSlowlorisConnectionReaped(t *testing.T) {
	fs, o := newFlagSet("flame-server")
	if err := fs.Parse([]string{"-read-header-timeout", "200ms"}); err != nil {
		t.Fatal(err)
	}
	srv := o.httpServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(ln) }()
	defer srv.Close()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Half a request line, then silence: the attack.
	if _, err := conn.Write([]byte("POST /geocode HTTP/1.1\r\nHost: x\r\nX-Dribble:")); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Fatal("server answered a half-sent request")
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("slowloris connection held for %v, want reaping near the 200ms ReadHeaderTimeout", elapsed)
	}

	// A well-behaved request on the same server still answers.
	conn2, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	if _, err := conn2.Write([]byte("GET /ok HTTP/1.1\r\nHost: x\r\n\r\n")); err != nil {
		t.Fatal(err)
	}
	res, err := http.ReadResponse(bufio.NewReader(conn2), nil)
	if err != nil {
		t.Fatalf("healthy request failed on the hardened server: %v", err)
	}
	res.Body.Close()
}
