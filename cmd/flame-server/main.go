// Command flame-server runs one OpenFLAME map server over an OSM XML map.
// With -register it joins the federation through a flame-dns registry
// admin endpoint on startup and deregisters on SIGTERM before draining
// in-flight requests; without it, it prints the DNS TXT records the
// operator should install in their spatial zone (§5.1). -replica-set and
// -sync-peers run the server as one member of a replica set, pulling
// anti-entropy from its siblings.
//
// Usage:
//
//	flame-server -map city.osm.xml -addr :8080 -name my-map [-public-url http://host:8080]
//	flame-server -map city.osm.xml -register http://127.0.0.1:5301 \
//	    -replica-set city -sync-peers http://peer1:8080,http://peer2:8080
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"openflame/internal/discovery"
	"openflame/internal/mapserver"
	"openflame/internal/osm"
	"openflame/internal/s2cell"
)

// options is the CLI surface, separated from main so tests can verify the
// flags round-trip into the server configuration.
type options struct {
	mapPath           string
	addr              string
	name              string
	publicURL         string
	useCH             bool
	minLevel          int
	maxLevel          int
	queryCache        bool
	queryCacheEntries int
	registerURL       string
	replicaSet        string
	syncPeers         string
	syncInterval      time.Duration
}

// defaultQueryCacheEntries sizes the query result cache when -query-cache
// is on and the operator gives no explicit size.
const defaultQueryCacheEntries = 4096

func newFlagSet(name string) (*flag.FlagSet, *options) {
	o := &options{}
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	fs.StringVar(&o.mapPath, "map", "", "OSM XML map file (required)")
	fs.StringVar(&o.addr, "addr", ":8080", "listen address")
	fs.StringVar(&o.name, "name", "", "server name (default: map name)")
	fs.StringVar(&o.publicURL, "public-url", "", "URL to advertise in DNS (default http://<addr>)")
	fs.BoolVar(&o.useCH, "ch", false, "preprocess routing with contraction hierarchies")
	fs.IntVar(&o.minLevel, "min-level", discovery.DefaultMinLevel, "coarsest registration cell level")
	fs.IntVar(&o.maxLevel, "max-level", discovery.DefaultMaxLevel, "finest registration cell level")
	fs.BoolVar(&o.queryCache, "query-cache", true, "memoize query results per map generation")
	fs.IntVar(&o.queryCacheEntries, "query-cache-entries", defaultQueryCacheEntries,
		"query cache capacity (entries, LRU-evicted)")
	fs.StringVar(&o.registerURL, "register", "", "flame-dns registry admin URL (e.g. http://127.0.0.1:5301): announce on startup, deregister on SIGTERM")
	fs.StringVar(&o.replicaSet, "replica-set", "", "replica-set id to register under (requires -register); siblings share load and fail over for each other")
	fs.StringVar(&o.syncPeers, "sync-peers", "", "comma-separated sibling replica URLs to pull anti-entropy from")
	fs.DurationVar(&o.syncInterval, "sync-interval", 5*time.Second, "anti-entropy pull interval (with -sync-peers)")
	return fs, o
}

// validate rejects flag combinations that would silently misbehave.
func (o *options) validate() error {
	if o.replicaSet != "" && o.registerURL == "" {
		return fmt.Errorf("-replica-set requires -register: without a registry the printed records " +
			"would carry no rs= tag and clients would treat the siblings as independent servers")
	}
	return nil
}

// peerList splits -sync-peers into URLs, dropping empties.
func (o *options) peerList() []string {
	var out []string
	for _, p := range strings.Split(o.syncPeers, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// cacheEntries resolves the two query-cache flags into the mapserver
// config knob: the entry count when caching is on, zero (disabled) when
// -query-cache=false.
func (o *options) cacheEntries() int {
	if !o.queryCache || o.queryCacheEntries <= 0 {
		return 0
	}
	return o.queryCacheEntries
}

// buildServer loads the map and constructs the configured map server.
func (o *options) buildServer() (*mapserver.Server, *osm.Map, error) {
	f, err := os.Open(o.mapPath)
	if err != nil {
		return nil, nil, fmt.Errorf("open map: %w", err)
	}
	m, err := osm.ReadXML(f)
	f.Close()
	if err != nil {
		return nil, nil, fmt.Errorf("parse map: %w", err)
	}
	srv, err := mapserver.New(mapserver.Config{
		Name:              o.name,
		Map:               m,
		UseCH:             o.useCH,
		MinLevel:          o.minLevel,
		MaxLevel:          o.maxLevel,
		QueryCacheEntries: o.cacheEntries(),
	})
	if err != nil {
		return nil, nil, err
	}
	return srv, m, nil
}

// advertiseURL is the URL published in the discovery DNS records.
func (o *options) advertiseURL() string {
	if o.publicURL != "" {
		return o.publicURL
	}
	return "http://" + o.addr
}

func main() {
	fs, o := newFlagSet("flame-server")
	if err := fs.Parse(os.Args[1:]); err != nil {
		os.Exit(2)
	}
	if o.mapPath == "" {
		fs.Usage()
		os.Exit(2)
	}
	if err := o.validate(); err != nil {
		log.Fatal(err)
	}
	srv, m, err := o.buildServer()
	if err != nil {
		log.Fatalf("build server: %v", err)
	}

	url := o.advertiseURL()
	info := srv.Info()
	fmt.Printf("map server %q: %d nodes, %d coverage cells\n", srv.Name(), m.NodeCount(), len(info.Coverage))
	if o.registerURL == "" {
		fmt.Println("install these records in your spatial DNS zone:")
		ann := discovery.Announcement{Name: info.Name, URL: url, Services: info.Services, Technologies: info.Technologies}
		for _, tok := range info.Coverage {
			cell := s2cell.FromToken(tok)
			fmt.Printf("  %s 60 IN TXT %q\n", discovery.CellDomain(cell, discovery.DefaultSuffix), discovery.FormatTXT(ann))
		}
	}
	// Serve until interrupted or SIGTERM'd, then leave the federation
	// cleanly: deregister from discovery FIRST (so new fan-outs stop
	// routing here within one TTL) and only then drain in-flight requests;
	// per-request contexts (honored by the handler) are cancelled by the
	// shutdown deadline if a request outlives the drain window.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// Bind BEFORE announcing: a server that cannot serve must never enter
	// the zone (authoritative records do not age out on their own — a
	// crashed-before-listening process would stay advertised forever).
	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	withdraw := func() {
		if o.registerURL == "" {
			return
		}
		wctx, wcancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer wcancel()
		if err := discovery.WithdrawHTTP(wctx, o.registerURL, info.Name); err != nil {
			log.Printf("deregister: %v (remove the records with the registry admin API)", err)
		} else {
			log.Printf("deregistered from %s", o.registerURL)
		}
	}
	// Catch up BEFORE serving or announcing: node versions live in memory,
	// so a restarted replica must adopt its siblings' state (and versions)
	// first — otherwise its early local writes would carry low versions
	// and lose to stale sibling history. Best effort: a sibling being down
	// must not block startup.
	var syncer *mapserver.Syncer
	if peers := o.peerList(); len(peers) > 0 {
		syncer = mapserver.NewSyncer(srv, nil)
		syncer.SetPeers(peers)
		syncer.Logf = log.Printf
		if applied, err := syncer.SyncOnce(ctx); err != nil {
			log.Printf("initial catch-up incomplete (continuing): %v", err)
		} else if applied > 0 {
			log.Printf("initial catch-up applied %d change(s)", applied)
		}
	}
	// Serve BEFORE announcing: once the registration lands, clients route
	// here immediately — a bound-but-not-serving window would burn their
	// per-server timeouts and trip breakers on the newborn member.
	httpSrv := &http.Server{Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()
	log.Printf("listening on %s", o.addr)
	if o.registerURL != "" {
		actx, acancel := context.WithTimeout(ctx, 10*time.Second)
		err := discovery.AnnounceHTTP(actx, o.registerURL, info, url, o.replicaSet)
		acancel()
		if err != nil {
			log.Fatalf("register: %v", err)
		}
		log.Printf("registered with %s (replica set %q)", o.registerURL, o.replicaSet)
	}
	if syncer != nil {
		go syncer.Run(ctx, o.syncInterval)
		log.Printf("anti-entropy from %d sibling(s) every %v", len(o.peerList()), o.syncInterval)
	}
	select {
	case err := <-errCh:
		withdraw()
		log.Fatalf("serve: %v", err)
	case <-ctx.Done():
	}
	withdraw()
	log.Printf("shutting down, draining in-flight requests")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Fatalf("shutdown: %v", err)
	}
}
