// Command flame-server runs one OpenFLAME map server over an OSM XML map.
// With -register it joins the federation through a flame-dns registry
// admin endpoint on startup and deregisters on SIGTERM before draining
// in-flight requests; without it, it prints the DNS TXT records the
// operator should install in their spatial zone (§5.1). -replica-set and
// -sync-peers run the server as one member of a replica set, pulling
// anti-entropy from its siblings.
//
// Usage:
//
//	flame-server -map city.osm.xml -addr :8080 -name my-map [-public-url http://host:8080]
//	flame-server -map city.osm.xml -register http://127.0.0.1:5301 \
//	    -replica-set city -sync-peers http://peer1:8080,http://peer2:8080
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"openflame/internal/discovery"
	"openflame/internal/mapserver"
	"openflame/internal/osm"
	"openflame/internal/s2cell"
	"openflame/internal/store"
)

// options is the CLI surface, separated from main so tests can verify the
// flags round-trip into the server configuration.
type options struct {
	mapPath           string
	snapshotPath      string
	snapshotV1        bool
	noPersistedIndex  bool
	addr              string
	name              string
	publicURL         string
	useCH             bool
	minLevel          int
	maxLevel          int
	queryCache        bool
	queryCacheEntries int
	registerURL       string
	replicaSet        string
	reannounce        time.Duration
	syncPeers         string
	syncInterval      time.Duration
	consistencyWait   time.Duration
	maxInFlight       int
	maxQueue          int
	queueWait         time.Duration
	retryAfter        time.Duration
	maxBodyBytes      int64
	maxBatchBodyBytes int64
	readHeaderTimeout time.Duration
	readTimeout       time.Duration
	writeTimeout      time.Duration
	idleTimeout       time.Duration
	maxWatchers       int
	watchPing         time.Duration
}

// defaultQueryCacheEntries sizes the query result cache when -query-cache
// is on and the operator gives no explicit size.
const defaultQueryCacheEntries = 4096

func newFlagSet(name string) (*flag.FlagSet, *options) {
	o := &options{}
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	fs.StringVar(&o.mapPath, "map", "", "OSM XML map file (required unless -snapshot exists)")
	fs.StringVar(&o.snapshotPath, "snapshot", "", "binary snapshot path: loaded instead of -map when it exists (restoring per-node change versions), rewritten on shutdown — so a restarted replica resumes versioning above its persisted history")
	fs.BoolVar(&o.snapshotV1, "snapshot-v1", false, "write the shutdown snapshot in the legacy v1 (gob) format for v1-era readers; loading accepts both formats regardless")
	fs.BoolVar(&o.noPersistedIndex, "no-persisted-index", false, "rollback switch for the persisted serving index: ignore index sections in the loaded snapshot (forcing the full index rebuild) and write none on shutdown")
	fs.StringVar(&o.addr, "addr", ":8080", "listen address")
	fs.StringVar(&o.name, "name", "", "server name (default: map name)")
	fs.StringVar(&o.publicURL, "public-url", "", "URL to advertise in DNS (default http://<addr>)")
	fs.BoolVar(&o.useCH, "ch", true, "preprocess routing with contraction hierarchies (built in the background; -ch=false serves bidirectional Dijkstra only)")
	fs.IntVar(&o.minLevel, "min-level", discovery.DefaultMinLevel, "coarsest registration cell level")
	fs.IntVar(&o.maxLevel, "max-level", discovery.DefaultMaxLevel, "finest registration cell level")
	fs.BoolVar(&o.queryCache, "query-cache", true, "memoize query results per map generation")
	fs.IntVar(&o.queryCacheEntries, "query-cache-entries", defaultQueryCacheEntries,
		"query cache capacity (entries, LRU-evicted)")
	fs.StringVar(&o.registerURL, "register", "", "flame-dns registry admin URL (e.g. http://127.0.0.1:5301): announce on startup, deregister on SIGTERM")
	fs.StringVar(&o.replicaSet, "replica-set", "", "replica-set id to register under (requires -register); siblings share load and fail over for each other")
	fs.DurationVar(&o.reannounce, "reannounce", 0, "re-announce to the registry on this interval (requires -register): renews the registration lease when the registry enforces one, so a member that dies silently is evicted instead of advertised forever (0 = announce once)")
	fs.StringVar(&o.syncPeers, "sync-peers", "", "comma-separated sibling replica URLs to pull anti-entropy from")
	fs.DurationVar(&o.syncInterval, "sync-interval", 5*time.Second, "anti-entropy pull interval (with -sync-peers)")
	fs.DurationVar(&o.consistencyWait, "consistency-wait", 0, "how long a read carrying a session mark this replica has not caught up to may wait for anti-entropy before answering 412 stale-replica (0 = refuse immediately)")
	fs.IntVar(&o.maxInFlight, "max-inflight", -1, "admission control: max concurrently executing requests; excess traffic queues briefly then is shed with 429 (-1 = auto: 4×GOMAXPROCS, 0 = no admission control)")
	fs.IntVar(&o.maxQueue, "max-queue", 0, "admission control: queue depth in front of the in-flight slots (0 = same as the in-flight bound)")
	fs.DurationVar(&o.queueWait, "queue-wait", mapserver.DefaultQueueWait, "admission control: max time a queued request waits for a slot before it is shed")
	fs.DurationVar(&o.retryAfter, "retry-after", mapserver.DefaultRetryAfter, "Retry-After hint attached to shed (429) responses")
	fs.Int64Var(&o.maxBodyBytes, "max-body-bytes", mapserver.DefaultMaxBodyBytes, "max request body size for single-service endpoints; larger POSTs earn 413 (<0 = unlimited)")
	fs.Int64Var(&o.maxBatchBodyBytes, "max-batch-body-bytes", mapserver.DefaultMaxBatchBodyBytes, "max request body size for /v1/batch (<0 = unlimited)")
	fs.DurationVar(&o.readHeaderTimeout, "read-header-timeout", 5*time.Second, "http.Server ReadHeaderTimeout: a client that trickles its headers (slowloris) is cut off after this long (0 = no limit)")
	fs.DurationVar(&o.readTimeout, "read-timeout", 30*time.Second, "http.Server ReadTimeout covering the whole request read (0 = no limit)")
	fs.DurationVar(&o.writeTimeout, "write-timeout", 0, "http.Server WriteTimeout covering each response write (0 = no limit); /v1/watch streams reset their own per-event write deadline, so they outlive this cap")
	fs.DurationVar(&o.idleTimeout, "idle-timeout", 2*time.Minute, "http.Server IdleTimeout for keep-alive connections (0 = no limit)")
	fs.IntVar(&o.maxWatchers, "max-watchers", 0, "max concurrent /v1/watch subscriptions; excess earns 429/Retry-After (0 = default 1024, <0 = unlimited)")
	fs.DurationVar(&o.watchPing, "watch-ping", mapserver.DefaultWatchPingInterval, "keepalive ping interval on idle watch streams")
	return fs, o
}

// inFlightBound resolves the -max-inflight sentinel: -1 sizes the bound to
// the machine (a few slots per core keeps the CPU busy through the brief
// I/O gaps of a request without letting hundreds of computations thrash),
// 0 disables admission control, positive values pass through.
func (o *options) inFlightBound() int {
	if o.maxInFlight < 0 {
		return 4 * runtime.GOMAXPROCS(0)
	}
	return o.maxInFlight
}

// httpServer builds the serving http.Server with the ingest timeouts.
// Without them one slow-header (slowloris) or slow-body client holds a
// connection — and its handler resources — forever. WriteTimeout defaults
// to 0: per-request deadlines belong to the client and the admission
// layer, not a blanket write cap that would sever a legitimately slow
// route response. Operators who do set -write-timeout don't endanger
// /v1/watch: the stream handler resets its own per-event write deadline
// via http.ResponseController, so a healthy stream outlives any cap while
// a stuck peer still fails a write promptly.
func (o *options) httpServer(h http.Handler) *http.Server {
	return &http.Server{
		Handler:           h,
		ReadHeaderTimeout: o.readHeaderTimeout,
		ReadTimeout:       o.readTimeout,
		WriteTimeout:      o.writeTimeout,
		IdleTimeout:       o.idleTimeout,
	}
}

// validate rejects flag combinations that would silently misbehave.
func (o *options) validate() error {
	if o.replicaSet != "" && o.registerURL == "" {
		return fmt.Errorf("-replica-set requires -register: without a registry the printed records " +
			"would carry no rs= tag and clients would treat the siblings as independent servers")
	}
	if o.reannounce > 0 && o.registerURL == "" {
		return fmt.Errorf("-reannounce requires -register: there is no registry to renew a lease with")
	}
	return nil
}

// peerList splits -sync-peers into URLs, dropping empties.
func (o *options) peerList() []string {
	var out []string
	for _, p := range strings.Split(o.syncPeers, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// cacheEntries resolves the two query-cache flags into the mapserver
// config knob: the entry count when caching is on, zero (disabled) when
// -query-cache=false.
func (o *options) cacheEntries() int {
	if !o.queryCache || o.queryCacheEntries <= 0 {
		return 0
	}
	return o.queryCacheEntries
}

// loadMap reads the served map: the binary snapshot when -snapshot names
// an existing file (recovering persisted node versions and, unless
// -no-persisted-index, the persisted serving index), else the OSM XML.
func (o *options) loadMap() (*osm.Map, map[osm.NodeID]uint64, *osm.IndexData, error) {
	if o.snapshotPath != "" {
		// LoadSnapshotFileIndexed memory-maps v2 snapshots where the
		// platform allows, aliasing the columns — and any persisted index —
		// zero-copy instead of reading them onto the heap; v1 snapshots
		// take the buffered-decode path.
		m, vers, idx, err := osm.LoadSnapshotFileIndexed(o.snapshotPath)
		if err == nil {
			if o.noPersistedIndex {
				idx = nil
			}
			return m, vers, idx, nil
		}
		if !errors.Is(err, os.ErrNotExist) {
			return nil, nil, nil, fmt.Errorf("load snapshot: %w", err)
		}
		// First boot: fall through to the XML source; the snapshot is
		// written on shutdown.
		if o.mapPath == "" {
			return nil, nil, nil, fmt.Errorf("snapshot %s does not exist yet and no -map was given to bootstrap from", o.snapshotPath)
		}
	}
	f, err := os.Open(o.mapPath)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("open map: %w", err)
	}
	defer f.Close()
	m, err := osm.ReadXML(f)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("parse map: %w", err)
	}
	return m, nil, nil, nil
}

// buildStore attaches the persisted index when the snapshot carried a
// valid one, else runs (and times) the full rebuild — the line it logs is
// the boot-latency tell operators watch for.
func buildStore(m *osm.Map, idx *osm.IndexData) *store.Store {
	if idx != nil {
		if st, err := store.NewWithIndex(m, idx); err == nil {
			log.Printf("index: attached")
			return st
		} else {
			log.Printf("index: attach failed (%v), rebuilding", err)
		}
	}
	start := time.Now()
	st := store.New(m)
	log.Printf("index: rebuilt (%d ms)", time.Since(start).Milliseconds())
	return st
}

// buildServer loads the map and constructs the configured map server.
func (o *options) buildServer() (*mapserver.Server, *osm.Map, error) {
	m, vers, idx, err := o.loadMap()
	if err != nil {
		return nil, nil, err
	}
	srv, err := mapserver.New(mapserver.Config{
		Name:              o.name,
		Map:               m,
		Store:             buildStore(m, idx),
		UseCH:             o.useCH,
		MinLevel:          o.minLevel,
		MaxLevel:          o.maxLevel,
		QueryCacheEntries: o.cacheEntries(),
		ConsistencyWait:   o.consistencyWait,
		MaxInFlight:       o.inFlightBound(),
		MaxQueue:          o.maxQueue,
		QueueWait:         o.queueWait,
		RetryAfter:        o.retryAfter,
		MaxBodyBytes:      o.maxBodyBytes,
		MaxBatchBodyBytes: o.maxBatchBodyBytes,
		MaxWatchers:       o.maxWatchers,
		WatchPingInterval: o.watchPing,
	})
	if err != nil {
		return nil, nil, err
	}
	if len(vers) > 0 {
		srv.Store().RestoreNodeVersions(vers)
	}
	return srv, m, nil
}

// saveSnapshot persists the map and its node versions for the next boot.
func (o *options) saveSnapshot(srv *mapserver.Server, m *osm.Map) error {
	if o.snapshotPath == "" {
		return nil
	}
	tmp := o.snapshotPath + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	// Persist the serving indexes alongside the map so the next boot
	// attaches instead of rebuilding; -snapshot-v1 has no section format to
	// carry them and -no-persisted-index is the explicit rollback.
	write := func(w io.Writer, vers map[osm.NodeID]uint64) error {
		return m.WriteSnapshotVersionsIndexed(w, vers, srv.Store().PersistedIndex())
	}
	if o.snapshotV1 {
		write = m.WriteSnapshotVersionsV1
	} else if o.noPersistedIndex {
		write = m.WriteSnapshotVersions
	}
	if err := write(f, srv.Store().NodeVersions()); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, o.snapshotPath)
}

// advertiseURL is the URL published in the discovery DNS records.
func (o *options) advertiseURL() string {
	if o.publicURL != "" {
		return o.publicURL
	}
	return "http://" + o.addr
}

func main() {
	fs, o := newFlagSet("flame-server")
	if err := fs.Parse(os.Args[1:]); err != nil {
		os.Exit(2)
	}
	if o.mapPath == "" && o.snapshotPath == "" {
		fs.Usage()
		os.Exit(2)
	}
	if err := o.validate(); err != nil {
		log.Fatal(err)
	}
	srv, m, err := o.buildServer()
	if err != nil {
		log.Fatalf("build server: %v", err)
	}

	url := o.advertiseURL()
	info := srv.Info()
	fmt.Printf("map server %q: %d nodes, %d coverage cells\n", srv.Name(), m.NodeCount(), len(info.Coverage))
	if o.useCH {
		// The hierarchy builds in the background and swaps in atomically;
		// boot is never gated on it — routing falls back to bidirectional
		// Dijkstra until the swap.
		go func() {
			if err := srv.WaitCH(context.Background()); err == nil {
				log.Printf("contraction hierarchies active")
			}
		}()
	}
	if o.registerURL == "" {
		fmt.Println("install these records in your spatial DNS zone:")
		ann := discovery.Announcement{Name: info.Name, URL: url, Services: info.Services, Technologies: info.Technologies}
		for _, tok := range info.Coverage {
			cell := s2cell.FromToken(tok)
			fmt.Printf("  %s 60 IN TXT %q\n", discovery.CellDomain(cell, discovery.DefaultSuffix), discovery.FormatTXT(ann))
		}
	}
	// Serve until interrupted or SIGTERM'd, then leave the federation
	// cleanly: deregister from discovery FIRST (so new fan-outs stop
	// routing here within one TTL) and only then drain in-flight requests;
	// per-request contexts (honored by the handler) are cancelled by the
	// shutdown deadline if a request outlives the drain window.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// Bind BEFORE announcing: a server that cannot serve must never enter
	// the zone (authoritative records do not age out on their own — a
	// crashed-before-listening process would stay advertised forever).
	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	withdraw := func() {
		if o.registerURL == "" {
			return
		}
		wctx, wcancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer wcancel()
		if err := discovery.WithdrawHTTP(wctx, o.registerURL, info.Name); err != nil {
			log.Printf("deregister: %v (remove the records with the registry admin API)", err)
		} else {
			log.Printf("deregistered from %s", o.registerURL)
		}
	}
	// Catch up BEFORE serving or announcing: node versions live in memory,
	// so a restarted replica must adopt its siblings' state (and versions)
	// first — otherwise its early local writes would carry low versions
	// and lose to stale sibling history. Best effort: a sibling being down
	// must not block startup.
	var syncer *mapserver.Syncer
	if peers := o.peerList(); len(peers) > 0 {
		syncer = mapserver.NewSyncer(srv, nil)
		syncer.SetPeers(peers)
		syncer.Logf = log.Printf
		if applied, err := syncer.SyncOnce(ctx); err != nil {
			log.Printf("initial catch-up incomplete (continuing): %v", err)
		} else if applied > 0 {
			log.Printf("initial catch-up applied %d change(s)", applied)
		}
	}
	// Serve BEFORE announcing: once the registration lands, clients route
	// here immediately — a bound-but-not-serving window would burn their
	// per-server timeouts and trip breakers on the newborn member.
	httpSrv := o.httpServer(srv.Handler())
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()
	log.Printf("listening on %s", o.addr)
	if o.registerURL != "" {
		actx, acancel := context.WithTimeout(ctx, 10*time.Second)
		err := discovery.AnnounceHTTP(actx, o.registerURL, info, url, o.replicaSet)
		acancel()
		if err != nil {
			log.Fatalf("register: %v", err)
		}
		log.Printf("registered with %s (replica set %q)", o.registerURL, o.replicaSet)
		if o.reannounce > 0 {
			// Lease renewal: an identical re-announce is free on the
			// registry (no epoch bump); a failed renewal is transient — the
			// next tick retries well inside any sane lease TTL.
			go func() {
				t := time.NewTicker(o.reannounce)
				defer t.Stop()
				for {
					select {
					case <-ctx.Done():
						return
					case <-t.C:
						actx, acancel := context.WithTimeout(ctx, 10*time.Second)
						if err := discovery.AnnounceHTTP(actx, o.registerURL, info, url, o.replicaSet); err != nil {
							log.Printf("re-announce: %v (retrying in %v)", err, o.reannounce)
						}
						acancel()
					}
				}
			}()
			log.Printf("re-announcing every %v", o.reannounce)
		}
	}
	var syncDone chan struct{}
	if syncer != nil {
		syncDone = make(chan struct{})
		go func() {
			defer close(syncDone)
			syncer.Run(ctx, o.syncInterval)
		}()
		log.Printf("anti-entropy from %d sibling(s) every %v", len(o.peerList()), o.syncInterval)
	}
	select {
	case err := <-errCh:
		withdraw()
		log.Fatalf("serve: %v", err)
	case <-ctx.Done():
	}
	withdraw()
	log.Printf("shutting down, draining in-flight requests")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Fatalf("shutdown: %v", err)
	}
	// Persist AFTER the drain AND after the background syncer has stopped:
	// the snapshot then includes every applied write, nothing mutates the
	// map while it serializes, and the next boot resumes node versioning
	// above it.
	if syncDone != nil {
		<-syncDone
	}
	if err := o.saveSnapshot(srv, m); err != nil {
		log.Fatalf("snapshot: %v", err)
	} else if o.snapshotPath != "" {
		log.Printf("snapshot written to %s", o.snapshotPath)
	}
}
