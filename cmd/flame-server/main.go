// Command flame-server runs one OpenFLAME map server over an OSM XML map.
// On startup it prints the DNS TXT records the operator should install in
// their spatial zone so clients can discover the server (§5.1).
//
// Usage:
//
//	flame-server -map city.osm.xml -addr :8080 -name my-map [-public-url http://host:8080]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"time"

	"openflame/internal/discovery"
	"openflame/internal/mapserver"
	"openflame/internal/osm"
	"openflame/internal/s2cell"
)

func main() {
	mapPath := flag.String("map", "", "OSM XML map file (required)")
	addr := flag.String("addr", ":8080", "listen address")
	name := flag.String("name", "", "server name (default: map name)")
	publicURL := flag.String("public-url", "", "URL to advertise in DNS (default http://<addr>)")
	useCH := flag.Bool("ch", false, "preprocess routing with contraction hierarchies")
	minLevel := flag.Int("min-level", discovery.DefaultMinLevel, "coarsest registration cell level")
	maxLevel := flag.Int("max-level", discovery.DefaultMaxLevel, "finest registration cell level")
	flag.Parse()

	if *mapPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(*mapPath)
	if err != nil {
		log.Fatalf("open map: %v", err)
	}
	m, err := osm.ReadXML(f)
	f.Close()
	if err != nil {
		log.Fatalf("parse map: %v", err)
	}
	srv, err := mapserver.New(mapserver.Config{
		Name:     *name,
		Map:      m,
		UseCH:    *useCH,
		MinLevel: *minLevel,
		MaxLevel: *maxLevel,
	})
	if err != nil {
		log.Fatalf("build server: %v", err)
	}

	url := *publicURL
	if url == "" {
		url = "http://" + *addr
	}
	info := srv.Info()
	fmt.Printf("map server %q: %d nodes, %d coverage cells\n", srv.Name(), m.NodeCount(), len(info.Coverage))
	fmt.Println("install these records in your spatial DNS zone:")
	ann := discovery.Announcement{Name: info.Name, URL: url, Services: info.Services, Technologies: info.Technologies}
	for _, tok := range info.Coverage {
		cell := s2cell.FromToken(tok)
		fmt.Printf("  %s 60 IN TXT %q\n", discovery.CellDomain(cell, discovery.DefaultSuffix), discovery.FormatTXT(ann))
	}
	// Serve until interrupted, then drain in-flight requests gracefully;
	// per-request contexts (honored by the handler) are cancelled by the
	// shutdown deadline if a request outlives the drain window.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Printf("listening on %s", *addr)
	select {
	case err := <-errCh:
		log.Fatalf("serve: %v", err)
	case <-ctx.Done():
	}
	log.Printf("shutting down, draining in-flight requests")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Fatalf("shutdown: %v", err)
	}
}
