// Command flame-server runs one OpenFLAME map server over an OSM XML map.
// On startup it prints the DNS TXT records the operator should install in
// their spatial zone so clients can discover the server (§5.1).
//
// Usage:
//
//	flame-server -map city.osm.xml -addr :8080 -name my-map [-public-url http://host:8080]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"time"

	"openflame/internal/discovery"
	"openflame/internal/mapserver"
	"openflame/internal/osm"
	"openflame/internal/s2cell"
)

// options is the CLI surface, separated from main so tests can verify the
// flags round-trip into the server configuration.
type options struct {
	mapPath           string
	addr              string
	name              string
	publicURL         string
	useCH             bool
	minLevel          int
	maxLevel          int
	queryCache        bool
	queryCacheEntries int
}

// defaultQueryCacheEntries sizes the query result cache when -query-cache
// is on and the operator gives no explicit size.
const defaultQueryCacheEntries = 4096

func newFlagSet(name string) (*flag.FlagSet, *options) {
	o := &options{}
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	fs.StringVar(&o.mapPath, "map", "", "OSM XML map file (required)")
	fs.StringVar(&o.addr, "addr", ":8080", "listen address")
	fs.StringVar(&o.name, "name", "", "server name (default: map name)")
	fs.StringVar(&o.publicURL, "public-url", "", "URL to advertise in DNS (default http://<addr>)")
	fs.BoolVar(&o.useCH, "ch", false, "preprocess routing with contraction hierarchies")
	fs.IntVar(&o.minLevel, "min-level", discovery.DefaultMinLevel, "coarsest registration cell level")
	fs.IntVar(&o.maxLevel, "max-level", discovery.DefaultMaxLevel, "finest registration cell level")
	fs.BoolVar(&o.queryCache, "query-cache", true, "memoize query results per map generation")
	fs.IntVar(&o.queryCacheEntries, "query-cache-entries", defaultQueryCacheEntries,
		"query cache capacity (entries, LRU-evicted)")
	return fs, o
}

// cacheEntries resolves the two query-cache flags into the mapserver
// config knob: the entry count when caching is on, zero (disabled) when
// -query-cache=false.
func (o *options) cacheEntries() int {
	if !o.queryCache || o.queryCacheEntries <= 0 {
		return 0
	}
	return o.queryCacheEntries
}

// buildServer loads the map and constructs the configured map server.
func (o *options) buildServer() (*mapserver.Server, *osm.Map, error) {
	f, err := os.Open(o.mapPath)
	if err != nil {
		return nil, nil, fmt.Errorf("open map: %w", err)
	}
	m, err := osm.ReadXML(f)
	f.Close()
	if err != nil {
		return nil, nil, fmt.Errorf("parse map: %w", err)
	}
	srv, err := mapserver.New(mapserver.Config{
		Name:              o.name,
		Map:               m,
		UseCH:             o.useCH,
		MinLevel:          o.minLevel,
		MaxLevel:          o.maxLevel,
		QueryCacheEntries: o.cacheEntries(),
	})
	if err != nil {
		return nil, nil, err
	}
	return srv, m, nil
}

// advertiseURL is the URL published in the discovery DNS records.
func (o *options) advertiseURL() string {
	if o.publicURL != "" {
		return o.publicURL
	}
	return "http://" + o.addr
}

func main() {
	fs, o := newFlagSet("flame-server")
	if err := fs.Parse(os.Args[1:]); err != nil {
		os.Exit(2)
	}
	if o.mapPath == "" {
		fs.Usage()
		os.Exit(2)
	}
	srv, m, err := o.buildServer()
	if err != nil {
		log.Fatalf("build server: %v", err)
	}

	url := o.advertiseURL()
	info := srv.Info()
	fmt.Printf("map server %q: %d nodes, %d coverage cells\n", srv.Name(), m.NodeCount(), len(info.Coverage))
	fmt.Println("install these records in your spatial DNS zone:")
	ann := discovery.Announcement{Name: info.Name, URL: url, Services: info.Services, Technologies: info.Technologies}
	for _, tok := range info.Coverage {
		cell := s2cell.FromToken(tok)
		fmt.Printf("  %s 60 IN TXT %q\n", discovery.CellDomain(cell, discovery.DefaultSuffix), discovery.FormatTXT(ann))
	}
	// Serve until interrupted, then drain in-flight requests gracefully;
	// per-request contexts (honored by the handler) are cancelled by the
	// shutdown deadline if a request outlives the drain window.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	httpSrv := &http.Server{Addr: o.addr, Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Printf("listening on %s", o.addr)
	select {
	case err := <-errCh:
		log.Fatalf("serve: %v", err)
	case <-ctx.Done():
	}
	log.Printf("shutting down, draining in-flight requests")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Fatalf("shutdown: %v", err)
	}
}
