package main

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"openflame/internal/discovery"
	"openflame/internal/mapserver"
	"openflame/internal/osm"
	"openflame/internal/wire"
	"openflame/internal/worldgen"
)

func TestFlagDefaultsAndRoundTrip(t *testing.T) {
	fs, o := newFlagSet("flame-server")
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if o.addr != ":8080" || o.mapPath != "" || !o.useCH {
		t.Fatalf("defaults changed: %+v", o)
	}
	if o.minLevel != discovery.DefaultMinLevel || o.maxLevel != discovery.DefaultMaxLevel {
		t.Fatalf("level defaults changed: %+v", o)
	}

	fs, o = newFlagSet("flame-server")
	err := fs.Parse([]string{
		"-map", "city.osm.xml", "-addr", ":9090", "-name", "my-map",
		"-public-url", "http://example:9090", "-ch=false", "-min-level", "10", "-max-level", "18",
	})
	if err != nil {
		t.Fatal(err)
	}
	if o.mapPath != "city.osm.xml" || o.addr != ":9090" || o.name != "my-map" || o.useCH {
		t.Fatalf("flags lost: %+v", o)
	}
	if o.minLevel != 10 || o.maxLevel != 18 {
		t.Fatalf("levels lost: %+v", o)
	}
	if got := o.advertiseURL(); got != "http://example:9090" {
		t.Fatalf("advertiseURL = %q", got)
	}
}

func TestAdvertiseURLDefaultsToAddr(t *testing.T) {
	o := &options{addr: ":8080"}
	if got := o.advertiseURL(); got != "http://:8080" {
		t.Fatalf("advertiseURL = %q", got)
	}
}

// TestBuildServerFromMapFile smoke-tests the full startup path: a
// generated store map written to disk, loaded through the flags, and
// served as a map server with coverage.
func TestBuildServerFromMapFile(t *testing.T) {
	w := worldgen.GenWorld(worldgen.DefaultWorldParams())
	path := filepath.Join(t.TempDir(), "city.osm.xml")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Outdoor.WriteXML(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	fs, o := newFlagSet("flame-server")
	if err := fs.Parse([]string{"-map", path, "-name", "smoke"}); err != nil {
		t.Fatal(err)
	}
	srv, m, err := o.buildServer()
	if err != nil {
		t.Fatal(err)
	}
	if srv.Name() != "smoke" {
		t.Fatalf("server name = %q", srv.Name())
	}
	if m.NodeCount() == 0 {
		t.Fatal("loaded map is empty")
	}
	if len(srv.Info().Coverage) == 0 {
		t.Fatal("server advertises no coverage")
	}
}

func TestBuildServerMissingMapFails(t *testing.T) {
	o := &options{mapPath: filepath.Join(t.TempDir(), "absent.xml")}
	if _, _, err := o.buildServer(); err == nil {
		t.Fatal("missing map accepted")
	}
}

func TestQueryCacheFlags(t *testing.T) {
	fs, o := newFlagSet("flame-server")
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if !o.queryCache || o.queryCacheEntries != defaultQueryCacheEntries {
		t.Fatalf("cache flag defaults changed: %+v", o)
	}
	if got := o.cacheEntries(); got != defaultQueryCacheEntries {
		t.Fatalf("default cacheEntries = %d", got)
	}

	fs, o = newFlagSet("flame-server")
	if err := fs.Parse([]string{"-query-cache-entries", "128"}); err != nil {
		t.Fatal(err)
	}
	if got := o.cacheEntries(); got != 128 {
		t.Fatalf("cacheEntries = %d, want 128", got)
	}

	// -query-cache=false disables regardless of the size knob.
	fs, o = newFlagSet("flame-server")
	if err := fs.Parse([]string{"-query-cache=false", "-query-cache-entries", "128"}); err != nil {
		t.Fatal(err)
	}
	if got := o.cacheEntries(); got != 0 {
		t.Fatalf("disabled cacheEntries = %d, want 0", got)
	}

	// A non-positive size also disables.
	fs, o = newFlagSet("flame-server")
	if err := fs.Parse([]string{"-query-cache-entries", "0"}); err != nil {
		t.Fatal(err)
	}
	if got := o.cacheEntries(); got != 0 {
		t.Fatalf("zero-entry cacheEntries = %d, want 0", got)
	}
}

// TestBuildServerWiresQueryCache smoke-tests that the flags reach the
// running server: with the cache on, a repeated query hits.
func TestBuildServerWiresQueryCache(t *testing.T) {
	w := worldgen.GenWorld(worldgen.DefaultWorldParams())
	path := filepath.Join(t.TempDir(), "city.osm.xml")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Outdoor.WriteXML(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	fs, o := newFlagSet("flame-server")
	if err := fs.Parse([]string{"-map", path, "-name", "cached", "-query-cache-entries", "16"}); err != nil {
		t.Fatal(err)
	}
	srv, _, err := o.buildServer()
	if err != nil {
		t.Fatal(err)
	}
	req := wire.GeocodeRequest{Query: "1st Street", Limit: 1}
	srv.Geocode(req)
	srv.Geocode(req)
	if stats := srv.QueryCacheStats(); stats.Hits == 0 {
		t.Fatalf("repeated query missed: %+v", stats)
	}

	fs, o = newFlagSet("flame-server")
	if err := fs.Parse([]string{"-map", path, "-query-cache=false"}); err != nil {
		t.Fatal(err)
	}
	srv, _, err = o.buildServer()
	if err != nil {
		t.Fatal(err)
	}
	srv.Geocode(req)
	srv.Geocode(req)
	if stats := srv.QueryCacheStats(); stats != (mapserver.QueryCacheStats{}) {
		t.Fatalf("disabled cache reports activity: %+v", stats)
	}
}

// TestMembershipFlags: the live-federation flags round-trip and the peer
// list parses.
func TestMembershipFlags(t *testing.T) {
	fs, o := newFlagSet("flame-server")
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if o.registerURL != "" || o.replicaSet != "" || o.syncPeers != "" {
		t.Fatalf("membership defaults changed: %+v", o)
	}
	if got := o.peerList(); len(got) != 0 {
		t.Fatalf("empty -sync-peers parsed as %v", got)
	}

	fs, o = newFlagSet("flame-server")
	err := fs.Parse([]string{
		"-register", "http://127.0.0.1:5301",
		"-replica-set", "city",
		"-sync-peers", "http://p1:8080, http://p2:8080,,",
		"-sync-interval", "2s",
	})
	if err != nil {
		t.Fatal(err)
	}
	if o.registerURL != "http://127.0.0.1:5301" || o.replicaSet != "city" {
		t.Fatalf("membership flags lost: %+v", o)
	}
	if got := o.peerList(); len(got) != 2 || got[0] != "http://p1:8080" || got[1] != "http://p2:8080" {
		t.Fatalf("peerList = %v", got)
	}
	if o.syncInterval != 2*time.Second {
		t.Fatalf("syncInterval = %v", o.syncInterval)
	}
}

// TestValidateRejectsReplicaSetWithoutRegister: the flag combination
// would silently print rs-less records; it must fail loudly instead.
func TestValidateRejectsReplicaSetWithoutRegister(t *testing.T) {
	o := &options{replicaSet: "city"}
	if err := o.validate(); err == nil {
		t.Fatal("-replica-set without -register accepted")
	}
	o = &options{replicaSet: "city", registerURL: "http://127.0.0.1:5301"}
	if err := o.validate(); err != nil {
		t.Fatalf("valid combination rejected: %v", err)
	}
	if err := (&options{}).validate(); err != nil {
		t.Fatalf("defaults rejected: %v", err)
	}
}

// TestSnapshotPersistenceRoundTrip: -snapshot restores the map AND the
// per-node change versions a previous run persisted, so a restarted
// replica mints versions above its history instead of from 1.
func TestSnapshotPersistenceRoundTrip(t *testing.T) {
	w := worldgen.GenWorld(worldgen.DefaultWorldParams())
	dir := t.TempDir()
	xmlPath := filepath.Join(dir, "city.osm.xml")
	f, err := os.Create(xmlPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Outdoor.WriteXML(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	snapPath := filepath.Join(dir, "city.snap")

	// Run 1: boots from XML (snapshot absent), takes two writes, persists.
	fs, o := newFlagSet("flame-server")
	if err := fs.Parse([]string{"-map", xmlPath, "-snapshot", snapPath, "-name", "city"}); err != nil {
		t.Fatal(err)
	}
	srv, m, err := o.buildServer()
	if err != nil {
		t.Fatal(err)
	}
	var nodeID osm.NodeID
	m.Nodes(func(n *osm.Node) bool { nodeID = n.ID; return false })
	for i := 0; i < 2; i++ {
		if !srv.ApplyInventoryUpdate(nodeID, osm.Tags{"name": "persisted"}) {
			t.Fatal("update refused")
		}
	}
	if err := o.saveSnapshot(srv, m); err != nil {
		t.Fatal(err)
	}

	// Run 2: boots from the snapshot; the node resumes at version 2.
	fs2, o2 := newFlagSet("flame-server")
	if err := fs2.Parse([]string{"-snapshot", snapPath, "-name", "city"}); err != nil {
		t.Fatal(err)
	}
	srv2, _, err := o2.buildServer()
	if err != nil {
		t.Fatal(err)
	}
	if got := srv2.Store().NodeVersion(nodeID); got != 2 {
		t.Fatalf("restored node version = %d, want 2", got)
	}
	if got := srv2.Store().Map().Node(nodeID).Tags.Get("name"); got != "persisted" {
		t.Fatalf("restored tags lost the write: %q", got)
	}
}

// TestValidateReannounceRequiresRegister: a renewal loop with no registry
// to renew against is a misconfiguration, not a silent no-op.
func TestValidateReannounceRequiresRegister(t *testing.T) {
	o := &options{reannounce: 30 * time.Second}
	if err := o.validate(); err == nil {
		t.Fatal("-reannounce without -register accepted")
	}
	o = &options{reannounce: 30 * time.Second, registerURL: "http://127.0.0.1:5301"}
	if err := o.validate(); err != nil {
		t.Fatalf("valid combination rejected: %v", err)
	}
}
