package main

import (
	"math/rand"
	"strings"
	"testing"
)

func TestFlagValidation(t *testing.T) {
	parse := func(args ...string) (*options, error) {
		fs, o := newFlagSet("test")
		if err := fs.Parse(args); err != nil {
			t.Fatalf("parse %v: %v", args, err)
		}
		return o, o.validate()
	}
	if _, err := parse(); err == nil || !strings.Contains(err.Error(), "-url") {
		t.Fatalf("missing -url accepted: %v", err)
	}
	if _, err := parse("-url", "http://x"); err == nil || !strings.Contains(err.Error(), "-bbox") {
		t.Fatalf("missing -bbox accepted: %v", err)
	}
	if _, err := parse("-url", "http://x", "-bbox", "1,2"); err == nil {
		t.Fatal("short bbox accepted")
	}
	if _, err := parse("-url", "http://x", "-bbox", "1,2,0,3"); err == nil {
		t.Fatal("inverted bbox accepted")
	}
	if _, err := parse("-url", "http://x", "-bbox", "0,0,1,1", "-mix", "tiles=1"); err == nil {
		t.Fatal("undriveable mix service accepted")
	}
	// The HTTP driver has no write path; the flag must say so rather than
	// silently issue reads.
	if _, err := parse("-url", "http://x", "-bbox", "0,0,1,1", "-write-ratio", "0.2"); err == nil ||
		!strings.Contains(err.Error(), "write") {
		t.Fatalf("write-ratio accepted: %v", err)
	}
	o, err := parse("-url", "http://x", "-bbox", "40.0,-80.0,40.1,-79.9", "-mix", "route=3,search=1")
	if err != nil {
		t.Fatalf("valid flags rejected: %v", err)
	}
	mix, err := o.mixWeights()
	if err != nil || len(mix) != 2 {
		t.Fatalf("mix = %v, %v", mix, err)
	}
	if mix[0].weight != 0.75 || mix[1].weight != 0.25 {
		t.Fatalf("weights not normalized: %v", mix)
	}
}

// TestOpFactoryCoversMix checks every configured service is eventually
// drawn and all request points land inside the bbox grid.
func TestOpFactoryCoversMix(t *testing.T) {
	fs, o := newFlagSet("test")
	if err := fs.Parse([]string{"-url", "http://x", "-bbox", "40.0,-80.0,40.1,-79.9"}); err != nil {
		t.Fatal(err)
	}
	if err := o.validate(); err != nil {
		t.Fatal(err)
	}
	factory := o.opFactory(nil)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		if op := factory(rng, i, false); op == nil {
			t.Fatalf("arrival %d produced no op", i)
		}
	}
}
