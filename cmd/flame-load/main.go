// Command flame-load is the open-loop workload driver for overload
// experiments: it offers requests to one map server at a FIXED arrival
// rate, regardless of how fast the server answers — the traffic model a
// federation member actually faces (millions of independent clients do not
// slow down because one server did). Offered load, goodput, shed rate and
// accepted-request latency percentiles are reported at the end, optionally
// as machine-readable JSON.
//
// The region mix is Zipf-skewed over a grid cut from -bbox (draw 0 = the
// hottest region), mirroring how real demand concentrates on popular
// places; queries for search/geocode are Zipf-ranked from -queries.
//
// Usage:
//
//	flame-load -url http://127.0.0.1:8080 -rate 500 -duration 30s \
//	    -bbox 40.0,-80.0,40.1,-79.9 -mix route=80,search=20 -json out.json
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"openflame/internal/geo"
	"openflame/internal/loadgen"
	"openflame/internal/wire"
)

type options struct {
	url        string
	rate       float64
	duration   time.Duration
	timeout    time.Duration
	mix        string
	bbox       string
	queries    string
	zipf       float64
	regions    int
	writeRatio float64
	watchers   int
	seed       int64
	jsonPath   string
	user       string
	app        string
}

func newFlagSet(name string) (*flag.FlagSet, *options) {
	o := &options{}
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	fs.StringVar(&o.url, "url", "", "map server base URL (required)")
	fs.Float64Var(&o.rate, "rate", 100, "offered load in requests per second (open-loop: arrivals never wait for completions)")
	fs.DurationVar(&o.duration, "duration", 10*time.Second, "how long to offer load")
	fs.DurationVar(&o.timeout, "timeout", 2*time.Second, "per-request deadline; a response past it counts as a timeout, not goodput")
	fs.StringVar(&o.mix, "mix", "route=70,search=20,geocode=10", "service mix as svc=weight pairs (route, search, geocode)")
	fs.StringVar(&o.bbox, "bbox", "", "minLat,minLng,maxLat,maxLng region requests are drawn from (required)")
	fs.StringVar(&o.queries, "queries", "cafe,library,hall,museum,market,park,station,bridge", "comma-separated search/geocode terms, Zipf-ranked (first = hottest)")
	fs.Float64Var(&o.zipf, "zipf", 1.2, "Zipf exponent for the region and query mix (higher = more skew)")
	fs.IntVar(&o.regions, "regions", 16, "number of Zipf-weighted sub-regions the bbox is cut into")
	fs.Float64Var(&o.writeRatio, "write-ratio", 0, "fraction of write arrivals — rejected over HTTP (the serving API has no write endpoint; the in-process E19 bench exercises the write mix)")
	fs.IntVar(&o.watchers, "watchers", 0, "standing /v1/watch subscriptions held open for the whole run alongside the request arrivals (region and query Zipf-drawn like requests); received delta events are reported at the end")
	fs.Int64Var(&o.seed, "seed", 1, "rng seed for the arrival mix (reproducible runs)")
	fs.StringVar(&o.jsonPath, "json", "", "also write the result as JSON to this path")
	fs.StringVar(&o.user, "user", "load@example.org", "X-Flame-User identity")
	fs.StringVar(&o.app, "app", "flame-load", "X-Flame-App identity")
	return fs, o
}

func (o *options) validate() error {
	if o.url == "" {
		return fmt.Errorf("-url is required")
	}
	if o.bbox == "" {
		return fmt.Errorf("-bbox is required (the driver needs to know where the map lives)")
	}
	if o.writeRatio > 0 {
		return fmt.Errorf("-write-ratio over HTTP is unsupported: the serving API has no write endpoint (writes are in-process, see mapserver.ApplyInventoryUpdate); use the E19 bench for mixed workloads")
	}
	if _, err := o.bounds(); err != nil {
		return err
	}
	if _, err := o.mixWeights(); err != nil {
		return err
	}
	return nil
}

func (o *options) bounds() ([4]float64, error) {
	var b [4]float64
	parts := strings.Split(o.bbox, ",")
	if len(parts) != 4 {
		return b, fmt.Errorf("-bbox wants minLat,minLng,maxLat,maxLng, got %q", o.bbox)
	}
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return b, fmt.Errorf("-bbox part %d: %v", i, err)
		}
		b[i] = v
	}
	if b[2] <= b[0] || b[3] <= b[1] {
		return b, fmt.Errorf("-bbox is empty: %v", b)
	}
	return b, nil
}

type mixEntry struct {
	svc    string
	weight float64
}

func (o *options) mixWeights() ([]mixEntry, error) {
	var out []mixEntry
	total := 0.0
	for _, part := range strings.Split(o.mix, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("-mix wants svc=weight pairs, got %q", part)
		}
		switch kv[0] {
		case "route", "search", "geocode":
		default:
			return nil, fmt.Errorf("-mix service %q not driveable (route, search, geocode)", kv[0])
		}
		w, err := strconv.ParseFloat(kv[1], 64)
		if err != nil || w < 0 {
			return nil, fmt.Errorf("-mix weight %q: %v", kv[1], err)
		}
		out = append(out, mixEntry{svc: kv[0], weight: w})
		total += w
	}
	if total <= 0 {
		return nil, fmt.Errorf("-mix has no positive weight")
	}
	for i := range out {
		out[i].weight /= total
	}
	return out, nil
}

func (o *options) queryList() []string {
	var out []string
	for _, q := range strings.Split(o.queries, ",") {
		if q = strings.TrimSpace(q); q != "" {
			out = append(out, q)
		}
	}
	if len(out) == 0 {
		out = []string{"cafe"}
	}
	return out
}

// opFactory builds the per-arrival Op: service chosen by weight, region by
// Zipf over the bbox grid, request fired as one POST.
func (o *options) opFactory(client *http.Client) func(rng *rand.Rand, seq int, write bool) loadgen.Op {
	b, _ := o.bounds()
	mix, _ := o.mixWeights()
	queries := o.queryList()
	regions := o.regions
	if regions < 1 {
		regions = 1
	}
	// Per-arrival samplers share the generator's rng (loadgen calls the
	// factory inline on the arrival goroutine).
	var regionDraw, queryDraw func() uint64
	var lastRng *rand.Rand
	samplers := func(rng *rand.Rand) {
		if rng != lastRng {
			regionDraw = loadgen.Zipf(rng, o.zipf, uint64(regions))
			queryDraw = loadgen.Zipf(rng, o.zipf, uint64(len(queries)))
			lastRng = rng
		}
	}
	latSpan := (b[2] - b[0]) / float64(regions)
	pointIn := func(rng *rand.Rand, region int) geo.LatLng {
		return geo.LatLng{
			Lat: b[0] + float64(region)*latSpan + rng.Float64()*latSpan,
			Lng: b[1] + rng.Float64()*(b[3]-b[1]),
		}
	}
	return func(rng *rand.Rand, seq int, write bool) loadgen.Op {
		samplers(rng)
		region := int(regionDraw())
		roll := rng.Float64()
		var path string
		var req interface{}
		for _, m := range mix {
			if roll -= m.weight; roll > 0 && m != mix[len(mix)-1] {
				continue
			}
			switch m.svc {
			case "route":
				path = "/route"
				req = wire.RouteRequest{From: pointIn(rng, region), To: pointIn(rng, region)}
			case "search":
				near := pointIn(rng, region)
				path = "/search"
				req = wire.SearchRequest{Query: queries[queryDraw()], Near: &near, Limit: 5}
			case "geocode":
				path = "/geocode"
				req = wire.GeocodeRequest{Query: queries[queryDraw()], Limit: 5}
			}
			break
		}
		body, _ := json.Marshal(req)
		url := o.url + path
		return func(ctx context.Context) loadgen.Outcome {
			hr, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
			if err != nil {
				return loadgen.Error
			}
			hr.Header.Set("Content-Type", "application/json")
			hr.Header.Set("X-Flame-User", o.user)
			hr.Header.Set("X-Flame-App", o.app)
			res, err := client.Do(hr)
			if err != nil {
				if ctx.Err() != nil {
					return loadgen.Timeout
				}
				return loadgen.Error
			}
			defer res.Body.Close()
			// Drain so the connection is reusable; the answer itself is
			// not the experiment's subject.
			_, _ = io.Copy(io.Discard, res.Body)
			return loadgen.ForStatus(res.StatusCode)
		}
	}
}

// watchFactory builds one standing subscription: a Zipf-drawn region point
// and query submitted to /v1/watch, the SSE stream drained until the run
// ends, delta frames counted.
func (o *options) watchFactory(client *http.Client) func(ctx context.Context, rng *rand.Rand, i int) (int64, error) {
	b, _ := o.bounds()
	queries := o.queryList()
	regions := o.regions
	if regions < 1 {
		regions = 1
	}
	latSpan := (b[2] - b[0]) / float64(regions)
	return func(ctx context.Context, rng *rand.Rand, i int) (int64, error) {
		region := int(loadgen.Zipf(rng, o.zipf, uint64(regions))())
		near := geo.LatLng{
			Lat: b[0] + float64(region)*latSpan + rng.Float64()*latSpan,
			Lng: b[1] + rng.Float64()*(b[3]-b[1]),
		}
		sub := wire.SubscribeRequest{Query: wire.SearchRequest{
			Query: queries[loadgen.Zipf(rng, o.zipf, uint64(len(queries)))()],
			Near:  &near, MaxDistanceMeters: 1000, Limit: 5,
		}}
		body, _ := json.Marshal(&sub)
		hr, err := http.NewRequestWithContext(ctx, http.MethodPost, o.url+"/v1/watch", bytes.NewReader(body))
		if err != nil {
			return 0, err
		}
		hr.Header.Set("Content-Type", "application/json")
		hr.Header.Set("Accept", "text/event-stream")
		hr.Header.Set("X-Flame-User", o.user)
		hr.Header.Set("X-Flame-App", o.app)
		res, err := client.Do(hr)
		if err != nil {
			if ctx.Err() != nil {
				return 0, nil
			}
			return 0, err
		}
		defer res.Body.Close()
		if res.StatusCode != http.StatusOK {
			_, _ = io.Copy(io.Discard, res.Body)
			return 0, fmt.Errorf("watch: status %d", res.StatusCode)
		}
		var deltas int64
		sc := bufio.NewScanner(res.Body)
		sc.Buffer(make([]byte, 0, 64<<10), 8<<20)
		for sc.Scan() {
			line := sc.Bytes()
			rest, ok := bytes.CutPrefix(line, []byte("data:"))
			if !ok {
				continue
			}
			var ev wire.Event
			if json.Unmarshal(bytes.TrimSpace(rest), &ev) == nil && ev.Type == wire.EventDelta {
				deltas++
			}
		}
		if ctx.Err() != nil {
			return deltas, nil
		}
		if err := sc.Err(); err != nil {
			return deltas, err
		}
		return deltas, fmt.Errorf("watch: stream ended early")
	}
}

// report is the machine-readable run summary.
type report struct {
	URL         string  `json:"url"`
	RatePerSec  float64 `json:"offeredRatePerSec"`
	DurationSec float64 `json:"durationSec"`
	Arrivals    int64   `json:"arrivals"`
	OK          int64   `json:"ok"`
	Shed        int64   `json:"shed"`
	Timeouts    int64   `json:"timeouts"`
	Errors      int64   `json:"errors"`
	Dropped     int64   `json:"dropped"`
	GoodputPS   float64 `json:"goodputPerSec"`
	P50MS       float64 `json:"p50AcceptedMs"`
	P95MS       float64 `json:"p95AcceptedMs"`
	P99MS       float64 `json:"p99AcceptedMs"`

	Watchers      int64 `json:"watchers,omitempty"`
	WatcherDeltas int64 `json:"watcherDeltas,omitempty"`
	WatcherErrors int64 `json:"watcherErrors,omitempty"`
}

func buildReport(o *options, res *loadgen.Result) report {
	return report{
		URL:           o.url,
		RatePerSec:    o.rate,
		DurationSec:   res.Elapsed.Seconds(),
		Arrivals:      res.Arrivals,
		OK:            res.OK,
		Shed:          res.Shed,
		Timeouts:      res.Timeouts,
		Errors:        res.Errors,
		Dropped:       res.Dropped,
		GoodputPS:     res.Goodput(),
		P50MS:         float64(res.PercentileOK(50)) / float64(time.Millisecond),
		P95MS:         float64(res.PercentileOK(95)) / float64(time.Millisecond),
		P99MS:         float64(res.PercentileOK(99)) / float64(time.Millisecond),
		Watchers:      res.Watchers,
		WatcherDeltas: res.WatcherDeltas,
		WatcherErrors: res.WatcherErrors,
	}
}

func main() {
	fs, o := newFlagSet("flame-load")
	if err := fs.Parse(os.Args[1:]); err != nil {
		os.Exit(2)
	}
	if err := o.validate(); err != nil {
		log.Fatal(err)
	}
	// The generator must not be the bottleneck: raise the per-host
	// connection pool well past the default 2 idle conns.
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        1024,
		MaxIdleConnsPerHost: 1024,
	}}
	log.Printf("offering %.0f req/s to %s for %v (open-loop)", o.rate, o.url, o.duration)
	res := loadgen.Run(context.Background(), loadgen.Config{
		Rate:     o.rate,
		Duration: o.duration,
		Timeout:  o.timeout,
		Seed:     o.seed,
		Op:       o.opFactory(client),
		Watchers: o.watchers,
		Watch:    o.watchFactory(client),
	})
	rep := buildReport(o, res)
	fmt.Printf("arrivals %d | ok %d (%.1f/s goodput) | shed %d | timeout %d | error %d | dropped %d\n",
		rep.Arrivals, rep.OK, rep.GoodputPS, rep.Shed, rep.Timeouts, rep.Errors, rep.Dropped)
	fmt.Printf("accepted latency: p50 %.1fms  p95 %.1fms  p99 %.1fms\n", rep.P50MS, rep.P95MS, rep.P99MS)
	if rep.Watchers > 0 {
		fmt.Printf("watchers %d | deltas %d | errors %d\n", rep.Watchers, rep.WatcherDeltas, rep.WatcherErrors)
	}
	if o.jsonPath != "" {
		b, _ := json.MarshalIndent(rep, "", "  ")
		if err := os.WriteFile(o.jsonPath, append(b, '\n'), 0o644); err != nil {
			log.Fatalf("write %s: %v", o.jsonPath, err)
		}
		log.Printf("wrote %s", o.jsonPath)
	}
}
