package main

import (
	"testing"
	"time"

	"openflame/internal/resilience"
)

// TestFlagDefaults pins the CLI defaults: everything resilience-related is
// off, reproducing the plain client.
func TestFlagDefaults(t *testing.T) {
	fs, o := newFlagSet("flame")
	if err := fs.Parse([]string{"discover", "40.44", "-79.99"}); err != nil {
		t.Fatal(err)
	}
	if got := fs.Args(); len(got) != 3 || got[0] != "discover" {
		t.Fatalf("positional args = %v", got)
	}
	if o.root != "127.0.0.1:5300" || o.timeout != 30*time.Second || o.perServer != 5*time.Second {
		t.Fatalf("defaults changed: %+v", o)
	}
	if o.retries != 0 || o.hedgeAfter != 0 || o.breakerThreshold != 0 || o.retryBudget != 0 {
		t.Fatalf("resilience should default off: %+v", o)
	}
	c := o.newClient()
	if c.RetryPolicy.MaxAttempts != 0 || c.HedgeAfter != 0 || c.BreakerThreshold != 0 {
		t.Fatalf("default client has resilience enabled: %+v", c)
	}
}

// TestFlagsRoundTripIntoClientConfig drives every knob through the flag
// parser and asserts it lands on the built client.
func TestFlagsRoundTripIntoClientConfig(t *testing.T) {
	fs, o := newFlagSet("flame")
	err := fs.Parse([]string{
		"-root", "10.1.2.3:53",
		"-world", "http://world:8080",
		"-user", "alice", "-app", "shopping",
		"-timeout", "12s",
		"-per-server-timeout", "750ms",
		"-concurrency", "4",
		"-retries", "3",
		"-retry-backoff", "20ms",
		"-retry-budget", "5",
		"-hedge-after", "40ms",
		"-breaker-threshold", "6",
		"-breaker-cooldown", "90s",
		"search", "40.44", "-79.99", "coffee",
	})
	if err != nil {
		t.Fatal(err)
	}
	c := o.newClient()
	if c.User != "alice" || c.App != "shopping" || c.WorldURL != "http://world:8080" {
		t.Fatalf("identity/world flags lost: %+v", c)
	}
	if c.MaxConcurrency != 4 || c.PerServerTimeout != 750*time.Millisecond {
		t.Fatalf("concurrency flags lost: MaxConcurrency=%d PerServerTimeout=%v",
			c.MaxConcurrency, c.PerServerTimeout)
	}
	wantRetry := resilience.RetryPolicy{MaxAttempts: 3, BaseBackoff: 20 * time.Millisecond, Budget: 5}
	if c.RetryPolicy != wantRetry {
		t.Fatalf("RetryPolicy = %+v, want %+v", c.RetryPolicy, wantRetry)
	}
	if c.HedgeAfter != 40*time.Millisecond || c.BreakerThreshold != 6 || c.BreakerCooldown != 90*time.Second {
		t.Fatalf("hedge/breaker flags lost: HedgeAfter=%v BreakerThreshold=%d BreakerCooldown=%v",
			c.HedgeAfter, c.BreakerThreshold, c.BreakerCooldown)
	}
	if got := fs.Args(); len(got) != 4 || got[0] != "search" {
		t.Fatalf("positional args = %v", got)
	}
	if o.timeout != 12*time.Second {
		t.Fatalf("timeout = %v", o.timeout)
	}
}

// TestUnknownFlagRejected: parse errors surface instead of being dropped.
func TestUnknownFlagRejected(t *testing.T) {
	fs, _ := newFlagSet("flame")
	fs.SetOutput(discard{})
	if err := fs.Parse([]string{"-no-such-flag"}); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// TestBatchFlagRoundTrip: -batch reaches Client.UseBatch and defaults off
// (byte-identical per-call behaviour).
func TestBatchFlagRoundTrip(t *testing.T) {
	fs, o := newFlagSet("flame")
	if err := fs.Parse([]string{"discover", "40.44", "-79.99"}); err != nil {
		t.Fatal(err)
	}
	if o.batch || o.newClient().UseBatch {
		t.Fatal("batching should default off")
	}
	fs, o = newFlagSet("flame")
	if err := fs.Parse([]string{"-batch", "discover", "40.44", "-79.99"}); err != nil {
		t.Fatal(err)
	}
	if !o.newClient().UseBatch {
		t.Fatal("-batch did not reach Client.UseBatch")
	}
}
