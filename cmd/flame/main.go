// Command flame is the OpenFLAME client CLI: it discovers map servers for
// a location through the spatial DNS and runs location-based services
// against the federation.
//
// Usage:
//
//	flame -root 127.0.0.1:5300 discover  <lat> <lng>
//	flame -root 127.0.0.1:5300 search    <lat> <lng> <query...>
//	flame -root 127.0.0.1:5300 geocode   -world http://host:8080 <address...>
//	flame -root 127.0.0.1:5300 route     <fromLat> <fromLng> <toLat> <toLng>
//	flame -root 127.0.0.1:5300 tile      <lat> <lng> <zoom> <out.png>
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"openflame/internal/client"
	"openflame/internal/discovery"
	"openflame/internal/dns"
	"openflame/internal/geo"
	"openflame/internal/tiles"
)

func main() {
	root := flag.String("root", "127.0.0.1:5300", "spatial DNS root server address")
	world := flag.String("world", "", "world map provider URL (for geocode)")
	user := flag.String("user", "", "identity asserted as X-Flame-User")
	app := flag.String("app", "", "application asserted as X-Flame-App")
	timeout := flag.Duration("timeout", 30*time.Second, "overall deadline for the command (0 = none)")
	perServer := flag.Duration("per-server-timeout", 5*time.Second, "deadline per federation member (0 = none)")
	concurrency := flag.Int("concurrency", 0, "max concurrent server calls (0 = default, 1 = sequential)")
	flag.Parse()

	args := flag.Args()
	if len(args) == 0 {
		usage()
	}
	// Ctrl-C cancels every in-flight discovery and server call.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	resolver := dns.NewResolver(dns.UDPExchanger{}, []dns.RootHint{{Name: "root.", Addr: *root}})
	disc := discovery.NewClient(resolver, discovery.DefaultSuffix)
	disc.MaxConcurrency = *concurrency
	c := client.New(disc, http.DefaultClient)
	c.User, c.App, c.WorldURL = *user, *app, *world
	c.MaxConcurrency = *concurrency
	c.PerServerTimeout = *perServer

	switch args[0] {
	case "discover":
		ll := parseLatLng(args, 1)
		anns := c.DiscoverCtx(ctx, ll)
		if len(anns) == 0 {
			fmt.Println("no map servers found")
			return
		}
		for _, a := range anns {
			fmt.Printf("%-24s level=%-2d %s services=%v\n", a.Name, a.Level, a.URL, a.Services)
		}
	case "search":
		ll := parseLatLng(args, 1)
		query := strings.Join(args[3:], " ")
		for i, r := range c.SearchCtx(ctx, query, ll, 10) {
			fmt.Printf("%2d. %-32s %6.0fm score=%.2f via %s\n",
				i+1, r.Name, r.DistanceMeters, r.Score, r.Source)
		}
	case "geocode":
		address := strings.Join(args[1:], " ")
		r, err := c.GeocodeCtx(ctx, address)
		if err != nil {
			log.Fatalf("geocode: %v", err)
		}
		fmt.Printf("%s at %s (score %.2f)\n", r.Name, r.Position, r.Score)
	case "route":
		from := parseLatLng(args, 1)
		to := parseLatLng(args, 3)
		route, err := c.RouteCtx(ctx, from, to)
		if err != nil {
			log.Fatalf("route: %v", err)
		}
		fmt.Printf("route: %.0fs, %.0fm across %d server(s)\n",
			route.CostSeconds, route.LengthMeters, route.ServersUsed)
		for _, leg := range route.Legs {
			fmt.Printf("  leg via %-24s %.0fs, %d points\n", leg.Server, leg.CostSeconds, len(leg.Points))
		}
	case "tile":
		ll := parseLatLng(args, 1)
		z := mustInt(args, 3)
		out := mustArg(args, 4)
		anns := c.DiscoverCtx(ctx, ll)
		if len(anns) == 0 {
			log.Fatal("no map servers found")
		}
		coord := tiles.FromLatLng(ll, z)
		png, err := c.GetTilePNGCtx(ctx, anns[0].URL, coord.Z, coord.X, coord.Y)
		if err != nil {
			log.Fatalf("tile: %v", err)
		}
		if err := os.WriteFile(out, png, 0o644); err != nil {
			log.Fatalf("write: %v", err)
		}
		fmt.Printf("wrote %s (%d bytes, tile %s from %s)\n", out, len(png), coord, anns[0].Name)
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: flame [flags] discover|search|geocode|route|tile ...")
	flag.PrintDefaults()
	os.Exit(2)
}

func mustArg(args []string, i int) string {
	if i >= len(args) {
		usage()
	}
	return args[i]
}

func mustInt(args []string, i int) int {
	v, err := strconv.Atoi(mustArg(args, i))
	if err != nil {
		usage()
	}
	return v
}

func parseLatLng(args []string, i int) geo.LatLng {
	lat, err1 := strconv.ParseFloat(mustArg(args, i), 64)
	lng, err2 := strconv.ParseFloat(mustArg(args, i+1), 64)
	if err1 != nil || err2 != nil {
		usage()
	}
	return geo.LatLng{Lat: lat, Lng: lng}
}
