// Command flame is the OpenFLAME client CLI: it discovers map servers for
// a location through the spatial DNS and runs location-based services
// against the federation.
//
// Usage:
//
//	flame -root 127.0.0.1:5300 discover  <lat> <lng>
//	flame -root 127.0.0.1:5300 search    <lat> <lng> <query...>
//	flame -root 127.0.0.1:5300 watch     <lat> <lng> <query...>
//	flame -root 127.0.0.1:5300 geocode   -world http://host:8080 <address...>
//	flame -root 127.0.0.1:5300 route     <fromLat> <fromLng> <toLat> <toLng>
//	flame -root 127.0.0.1:5300 tile      <lat> <lng> <zoom> <out.png>
//
// watch subscribes instead of asking: it prints the initial result set,
// then +/- delta lines as the region's inventory churns, until interrupted
// (-timeout defaults to none for this command unless set explicitly).
//
// Resilience flags (-retries, -retry-budget, -hedge-after,
// -breaker-threshold) tune how the client treats an unreliable
// federation; all default off, reproducing the plain client. -batch
// coalesces same-server sub-queries into /v1/batch round trips. -session
// runs the command's reads under session consistency: replicas that lag
// behind what the command has already observed refuse and the client fails
// over to a caught-up sibling.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"openflame/internal/client"
	"openflame/internal/discovery"
	"openflame/internal/dns"
	"openflame/internal/geo"
	"openflame/internal/resilience"
	"openflame/internal/tiles"
)

// options is the CLI surface, separated from main so tests can verify the
// flags round-trip into the client configuration.
type options struct {
	root      string
	world     string
	user, app string

	timeout     time.Duration
	perServer   time.Duration
	concurrency int
	batch       bool
	session     bool

	retries          int
	retryBackoff     time.Duration
	retryBudget      int
	hedgeAfter       time.Duration
	breakerThreshold int
	breakerCooldown  time.Duration
}

// newFlagSet declares every flame flag on a fresh FlagSet bound to a fresh
// options value.
func newFlagSet(name string) (*flag.FlagSet, *options) {
	o := &options{}
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	fs.StringVar(&o.root, "root", "127.0.0.1:5300", "spatial DNS root server address")
	fs.StringVar(&o.world, "world", "", "world map provider URL (for geocode)")
	fs.StringVar(&o.user, "user", "", "identity asserted as X-Flame-User")
	fs.StringVar(&o.app, "app", "", "application asserted as X-Flame-App")
	fs.DurationVar(&o.timeout, "timeout", 30*time.Second, "overall deadline for the command (0 = none)")
	fs.DurationVar(&o.perServer, "per-server-timeout", 5*time.Second, "deadline per federation member, spanning its retries and hedges (0 = none)")
	fs.IntVar(&o.concurrency, "concurrency", 0, "max concurrent server calls (0 = default, 1 = sequential)")
	fs.BoolVar(&o.batch, "batch", false, "coalesce a request's sub-queries to the same server into POST /v1/batch round trips (servers without the endpoint fall back transparently)")
	fs.BoolVar(&o.session, "session", false, "session consistency: carry high-water marks across this command's reads so a lagging replica is failed over instead of serving stale state")
	fs.IntVar(&o.retries, "retries", 0, "max attempts per server call; 5xx/timeouts/transport errors are retried with jittered backoff (0 or 1 = no retries)")
	fs.DurationVar(&o.retryBackoff, "retry-backoff", 10*time.Millisecond, "base backoff before the first retry (doubles per attempt)")
	fs.IntVar(&o.retryBudget, "retry-budget", 0, "max total retries per command across all federation members (0 = unlimited)")
	fs.DurationVar(&o.hedgeAfter, "hedge-after", 0, "race a second attempt against a server that has not answered after this long; adapts to the server's tracked p95 once warmed (0 = off)")
	fs.IntVar(&o.breakerThreshold, "breaker-threshold", 0, "consecutive failures before a member's circuit breaker opens and it is skipped without HTTP (0 = off)")
	fs.DurationVar(&o.breakerCooldown, "breaker-cooldown", 5*time.Second, "how long an open breaker waits before a half-open probe re-admits the member")
	return fs, o
}

// newClient builds the configured OpenFLAME client.
func (o *options) newClient() *client.Client {
	resolver := dns.NewResolver(dns.UDPExchanger{}, []dns.RootHint{{Name: "root.", Addr: o.root}})
	disc := discovery.NewClient(resolver, discovery.DefaultSuffix)
	disc.MaxConcurrency = o.concurrency
	c := client.New(disc, http.DefaultClient)
	c.User, c.App, c.WorldURL = o.user, o.app, o.world
	c.MaxConcurrency = o.concurrency
	c.PerServerTimeout = o.perServer
	c.UseBatch = o.batch
	c.RetryPolicy = resilience.RetryPolicy{
		MaxAttempts: o.retries,
		BaseBackoff: o.retryBackoff,
		Budget:      o.retryBudget,
	}
	c.HedgeAfter = o.hedgeAfter
	c.BreakerThreshold = o.breakerThreshold
	c.BreakerCooldown = o.breakerCooldown
	return c
}

// callOpts translates the flags into per-call v2 options.
func (o *options) callOpts() []client.CallOption {
	var opts []client.CallOption
	if o.session {
		opts = append(opts, client.WithConsistency(client.ConsistencySession))
	}
	return opts
}

func main() {
	fs, o := newFlagSet("flame")
	fs.Usage = func() { usage(fs) }
	if err := fs.Parse(os.Args[1:]); err != nil {
		os.Exit(2)
	}

	args := fs.Args()
	if len(args) == 0 {
		usage(fs)
		os.Exit(2)
	}
	// Ctrl-C cancels every in-flight discovery and server call.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	// watch is open-ended by design: the default 30s deadline would sever a
	// healthy stream, so it only applies when the operator set it themselves.
	if args[0] == "watch" && !flagWasSet(fs, "timeout") {
		o.timeout = 0
	}
	if o.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, o.timeout)
		defer cancel()
	}
	c := o.newClient()

	switch args[0] {
	case "discover":
		ll := parseLatLng(fs, args, 1)
		anns := c.DiscoverV2(ctx, ll)
		if len(anns) == 0 {
			fmt.Println("no map servers found")
			return
		}
		for _, a := range anns {
			fmt.Printf("%-24s level=%-2d %s services=%v\n", a.Name, a.Level, a.URL, a.Services)
		}
	case "search":
		ll := parseLatLng(fs, args, 1)
		query := strings.Join(args[3:], " ")
		for i, r := range c.SearchV2(ctx, query, ll, 10, o.callOpts()...) {
			fmt.Printf("%2d. %-32s %6.0fm score=%.2f via %s\n",
				i+1, r.Name, r.DistanceMeters, r.Score, r.Source)
		}
	case "watch":
		ll := parseLatLng(fs, args, 1)
		query := strings.Join(args[3:], " ")
		w, err := c.WatchV2(ctx, query, ll, 10, o.callOpts()...)
		if err != nil {
			log.Fatalf("watch: %v", err)
		}
		defer w.Stop()
		for ev := range w.Events() {
			if ev.Init {
				fmt.Printf("=== %s: %d result(s)\n", ev.Server, len(ev.Results))
				for i, r := range ev.Results {
					fmt.Printf("%2d. %-32s %6.0fm score=%.2f\n", i+1, r.Name, r.DistanceMeters, r.Score)
				}
				continue
			}
			for _, r := range ev.Updated {
				fmt.Printf(" + %-32s %6.0fm score=%.2f via %s\n", r.Name, r.DistanceMeters, r.Score, ev.Server)
			}
			for _, id := range ev.Removed {
				fmt.Printf(" - node %d via %s\n", id, ev.Server)
			}
		}
	case "geocode":
		address := strings.Join(args[1:], " ")
		r, err := c.GeocodeV2(ctx, address, o.callOpts()...)
		if err != nil {
			log.Fatalf("geocode: %v", err)
		}
		fmt.Printf("%s at %s (score %.2f)\n", r.Name, r.Position, r.Score)
	case "route":
		from := parseLatLng(fs, args, 1)
		to := parseLatLng(fs, args, 3)
		route, err := c.RouteV2(ctx, from, to, o.callOpts()...)
		if err != nil {
			log.Fatalf("route: %v", err)
		}
		fmt.Printf("route: %.0fs, %.0fm across %d server(s)\n",
			route.CostSeconds, route.LengthMeters, route.ServersUsed)
		for _, leg := range route.Legs {
			fmt.Printf("  leg via %-24s %.0fs, %d points\n", leg.Server, leg.CostSeconds, len(leg.Points))
		}
	case "tile":
		ll := parseLatLng(fs, args, 1)
		z := mustInt(fs, args, 3)
		out := mustArg(fs, args, 4)
		anns := c.DiscoverV2(ctx, ll)
		if len(anns) == 0 {
			log.Fatal("no map servers found")
		}
		coord := tiles.FromLatLng(ll, z)
		png, err := c.TilePNGV2(ctx, anns[0].URL, coord.Z, coord.X, coord.Y)
		if err != nil {
			log.Fatalf("tile: %v", err)
		}
		if err := os.WriteFile(out, png, 0o644); err != nil {
			log.Fatalf("write: %v", err)
		}
		fmt.Printf("wrote %s (%d bytes, tile %s from %s)\n", out, len(png), coord, anns[0].Name)
	default:
		usage(fs)
		os.Exit(2)
	}
}

func usage(fs *flag.FlagSet) {
	fmt.Fprintln(os.Stderr, "usage: flame [flags] discover|search|watch|geocode|route|tile ...")
	fs.PrintDefaults()
}

// flagWasSet reports whether the named flag appeared on the command line
// (as opposed to holding its default).
func flagWasSet(fs *flag.FlagSet, name string) bool {
	set := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

func mustArg(fs *flag.FlagSet, args []string, i int) string {
	if i >= len(args) {
		usage(fs)
		os.Exit(2)
	}
	return args[i]
}

func mustInt(fs *flag.FlagSet, args []string, i int) int {
	v, err := strconv.Atoi(mustArg(fs, args, i))
	if err != nil {
		usage(fs)
		os.Exit(2)
	}
	return v
}

func parseLatLng(fs *flag.FlagSet, args []string, i int) geo.LatLng {
	lat, err1 := strconv.ParseFloat(mustArg(fs, args, i), 64)
	lng, err2 := strconv.ParseFloat(mustArg(fs, args, i+1), 64)
	if err1 != nil || err2 != nil {
		usage(fs)
		os.Exit(2)
	}
	return geo.LatLng{Lat: lat, Lng: lng}
}
