package main

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestFlagDefaultsAndRoundTrip(t *testing.T) {
	fs, o := newFlagSet("flame-dns")
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if o.apex != "loc.flame.arpa" || o.addr != "127.0.0.1:5300" || o.records != "" {
		t.Fatalf("defaults changed: %+v", o)
	}

	fs, o = newFlagSet("flame-dns")
	if err := fs.Parse([]string{"-apex", "geo.example.", "-addr", "0.0.0.0:53", "-records", "zone.txt"}); err != nil {
		t.Fatal(err)
	}
	if o.apex != "geo.example." || o.addr != "0.0.0.0:53" || o.records != "zone.txt" {
		t.Fatalf("flags lost: %+v", o)
	}
}

// TestBuildZoneLoadsRecords smoke-tests startup: a record file on disk is
// loaded into the authoritative zone.
func TestBuildZoneLoadsRecords(t *testing.T) {
	path := filepath.Join(t.TempDir(), "zone.txt")
	records := "; test zone\n" +
		"q1.loc.flame.arpa. TXT v=flame1 name=my-map url=http://host:8080\n"
	if err := os.WriteFile(path, []byte(records), 0o644); err != nil {
		t.Fatal(err)
	}
	empty, _, err := (&options{apex: "loc.flame.arpa"}).buildZone()
	if err != nil {
		t.Fatal(err)
	}
	base := empty.RecordCount() // a fresh zone already holds its SOA

	o := &options{apex: "loc.flame.arpa", records: path}
	zone, n, err := o.buildZone()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 || zone.RecordCount() != base+1 {
		t.Fatalf("loaded %d records, zone has %d (base %d), want 1 loaded", n, zone.RecordCount(), base)
	}
}

func TestBuildZoneWithoutRecords(t *testing.T) {
	o := &options{apex: "loc.flame.arpa"}
	zone, n, err := o.buildZone()
	if err != nil || n != 0 || zone == nil {
		t.Fatalf("empty zone build: zone=%v n=%d err=%v", zone, n, err)
	}
}

func TestBuildZoneMissingFileFails(t *testing.T) {
	o := &options{apex: "loc.flame.arpa", records: filepath.Join(t.TempDir(), "absent.txt")}
	if _, _, err := o.buildZone(); err == nil {
		t.Fatal("missing record file accepted")
	}
}

// TestAdminFlag: the registry admin endpoint defaults off and round-trips.
func TestAdminFlag(t *testing.T) {
	fs, o := newFlagSet("flame-dns")
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if o.admin != "" {
		t.Fatalf("admin default changed: %q", o.admin)
	}
	fs, o = newFlagSet("flame-dns")
	if err := fs.Parse([]string{"-admin", "127.0.0.1:5301"}); err != nil {
		t.Fatal(err)
	}
	if o.admin != "127.0.0.1:5301" {
		t.Fatalf("admin flag lost: %q", o.admin)
	}
}

// TestValidateLeaseRequiresAdmin: leases are enforced by the registry
// behind -admin; -lease alone would silently never evict anyone.
func TestValidateLeaseRequiresAdmin(t *testing.T) {
	o := &options{lease: 8 * time.Second}
	if err := o.validate(); err == nil {
		t.Fatal("-lease without -admin accepted")
	}
	o = &options{lease: 8 * time.Second, admin: "127.0.0.1:5322"}
	if err := o.validate(); err != nil {
		t.Fatalf("valid combination rejected: %v", err)
	}
	if err := (&options{}).validate(); err != nil {
		t.Fatalf("defaults rejected: %v", err)
	}
	if got := o.sweepInterval(); got != 2*time.Second {
		t.Fatalf("sweep interval = %v, want lease/4", got)
	}
	if got := (&options{lease: 100 * time.Millisecond}).sweepInterval(); got != 250*time.Millisecond {
		t.Fatalf("tiny-lease sweep interval = %v, want the 250ms floor", got)
	}
}
