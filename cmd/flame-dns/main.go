// Command flame-dns runs an authoritative DNS server for a spatial zone —
// the discovery substrate of §5.1. Records are loaded from a simple text
// file, one record per line:
//
//	; comment
//	<name> <type> <value...>
//	q1.q2.f2.loc.flame.arpa. TXT v=flame1 name=my-map url=http://host:8080
//	sub.loc.flame.arpa.      NS  ns.sub.loc.flame.arpa.
//	ns.sub.loc.flame.arpa.   A   10.0.0.9
//	ns.sub.loc.flame.arpa.   SRV 5353
//
// Usage:
//
//	flame-dns -apex loc.flame.arpa -addr 127.0.0.1:5300 -records zone.txt
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"openflame/internal/discovery"
	"openflame/internal/dns"
)

// options is the CLI surface, separated from main so tests can verify the
// flags round-trip into the zone configuration.
type options struct {
	apex    string
	addr    string
	records string
	admin   string
	lease   time.Duration
}

func newFlagSet(name string) (*flag.FlagSet, *options) {
	o := &options{}
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	fs.StringVar(&o.apex, "apex", "loc.flame.arpa", "zone apex")
	fs.StringVar(&o.addr, "addr", "127.0.0.1:5300", "listen address (UDP+TCP)")
	fs.StringVar(&o.records, "records", "", "record file (optional)")
	fs.StringVar(&o.admin, "admin", "", "registry admin HTTP address for runtime register/unregister, e.g. 127.0.0.1:5301 (empty = off; bind to localhost or front with your gateway)")
	fs.DurationVar(&o.lease, "lease", 0, "registration lease TTL (with -admin): members that do not re-announce within it are evicted at a bumped epoch, closing the SIGKILL/power-loss gap (0 = registrations never expire)")
	return fs, o
}

// validate rejects flag combinations that would silently misbehave.
func (o *options) validate() error {
	if o.lease > 0 && o.admin == "" {
		return fmt.Errorf("-lease requires -admin: leases are enforced by the registry, " +
			"and without the admin endpoint there is no registry (or any way for members to renew)")
	}
	return nil
}

// sweepInterval is how often lapsed leases are collected: a fraction of
// the TTL so an eviction lands promptly after the lease ends, floored so a
// tiny TTL cannot spin the sweeper.
func (o *options) sweepInterval() time.Duration {
	iv := o.lease / 4
	if iv < 250*time.Millisecond {
		iv = 250 * time.Millisecond
	}
	return iv
}

// buildZone creates the authoritative zone and loads the record file when
// one is configured, returning the number of records loaded.
func (o *options) buildZone() (*dns.Zone, int, error) {
	zone := dns.NewZone(o.apex)
	if o.records == "" {
		return zone, 0, nil
	}
	f, err := os.Open(o.records)
	if err != nil {
		return nil, 0, fmt.Errorf("open records: %w", err)
	}
	defer f.Close()
	n, err := dns.ParseZoneRecords(zone, f)
	if err != nil {
		return nil, 0, fmt.Errorf("load records: %w", err)
	}
	return zone, n, nil
}

func main() {
	fs, o := newFlagSet("flame-dns")
	if err := fs.Parse(os.Args[1:]); err != nil {
		os.Exit(2)
	}
	if err := o.validate(); err != nil {
		log.Fatal(err)
	}
	zone, n, err := o.buildZone()
	if err != nil {
		log.Fatal(err)
	}
	if n > 0 {
		log.Printf("loaded %d records from %s", n, o.records)
	}
	srv, err := dns.NewServer(zone, o.addr)
	if err != nil {
		log.Fatalf("start: %v", err)
	}
	defer srv.Close()
	fmt.Printf("authoritative for %s on %s (%d records)\n", zone.Apex(), srv.Addr(), zone.RecordCount())

	// The admin endpoint turns the static zone into a LIVE membership
	// registry: map servers join with POST /v1/register and leave with
	// POST /v1/unregister, each change re-stamping the zone at a new epoch.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if o.admin != "" {
		registry := discovery.NewRegistry(zone, zone.Apex())
		registry.LeaseTTL = o.lease
		// The admin plane is tiny, trusted-ish traffic; fixed conservative
		// ingest timeouts are enough to stop a slow-header client from
		// parking a connection forever.
		adminSrv := &http.Server{
			Addr:              o.admin,
			Handler:           discovery.RegistryHandler(registry),
			ReadHeaderTimeout: 5 * time.Second,
			ReadTimeout:       30 * time.Second,
			IdleTimeout:       2 * time.Minute,
		}
		go func() {
			if err := adminSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Fatalf("admin: %v", err)
			}
		}()
		defer adminSrv.Close()
		log.Printf("registry admin on http://%s (register/unregister/members)", o.admin)
		if o.lease > 0 {
			go registry.SweepLeases(ctx, o.sweepInterval(), log.Printf)
			log.Printf("registration leases: %v (silent members evicted)", o.lease)
		}
	}
	<-ctx.Done()
	log.Printf("served %d queries", srv.QueryCount())
}
