// Command flame-dns runs an authoritative DNS server for a spatial zone —
// the discovery substrate of §5.1. Records are loaded from a simple text
// file, one record per line:
//
//	; comment
//	<name> <type> <value...>
//	q1.q2.f2.loc.flame.arpa. TXT v=flame1 name=my-map url=http://host:8080
//	sub.loc.flame.arpa.      NS  ns.sub.loc.flame.arpa.
//	ns.sub.loc.flame.arpa.   A   10.0.0.9
//	ns.sub.loc.flame.arpa.   SRV 5353
//
// Usage:
//
//	flame-dns -apex loc.flame.arpa -addr 127.0.0.1:5300 -records zone.txt
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"

	"openflame/internal/dns"
)

func main() {
	apex := flag.String("apex", "loc.flame.arpa", "zone apex")
	addr := flag.String("addr", "127.0.0.1:5300", "listen address (UDP+TCP)")
	records := flag.String("records", "", "record file (optional)")
	flag.Parse()

	zone := dns.NewZone(*apex)
	if *records != "" {
		f, err := os.Open(*records)
		if err != nil {
			log.Fatalf("open records: %v", err)
		}
		n, err := dns.ParseZoneRecords(zone, f)
		f.Close()
		if err != nil {
			log.Fatalf("load records: %v", err)
		}
		log.Printf("loaded %d records from %s", n, *records)
	}
	srv, err := dns.NewServer(zone, *addr)
	if err != nil {
		log.Fatalf("start: %v", err)
	}
	defer srv.Close()
	fmt.Printf("authoritative for %s on %s (%d records)\n", zone.Apex(), srv.Addr(), zone.RecordCount())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	<-ctx.Done()
	log.Printf("served %d queries", srv.QueryCount())
}
