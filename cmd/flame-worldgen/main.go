// Command flame-worldgen emits a synthetic world — an outdoor city map and
// indoor store maps — as OSM XML files, for feeding flame-server instances
// or offline inspection. With -import it instead streams a real OSM XML
// extract (optionally clipped to -bbox) into a binary v2 snapshot that
// flame-server loads directly.
//
// Usage:
//
//	flame-worldgen -out ./world -stores 3 -blocks 8 -seed 1
//	flame-worldgen -out ./world -import city-extract.osm -bbox "40.42,-80.02,40.46,-79.92"
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"

	"openflame/internal/fanout"
	"openflame/internal/geo"
	"openflame/internal/osm"
	"openflame/internal/store"
	"openflame/internal/worldgen"
)

// options is the CLI surface, separated from main so tests can run the
// generator end to end.
type options struct {
	out        string
	stores     int
	blocks     int
	seed       int64
	importPath string
	bbox       string
	name       string
}

func newFlagSet(name string) (*flag.FlagSet, *options) {
	o := &options{}
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	fs.StringVar(&o.out, "out", "world", "output directory")
	fs.IntVar(&o.stores, "stores", 3, "number of indoor store maps")
	fs.IntVar(&o.blocks, "blocks", 8, "city grid size (blocks per side)")
	fs.Int64Var(&o.seed, "seed", 1, "generation seed")
	fs.StringVar(&o.importPath, "import", "", "stream a real OSM XML extract into <out>/imported.snap instead of generating a world")
	fs.StringVar(&o.bbox, "bbox", "", "clip an -import to \"minLat,minLng,maxLat,maxLng\" (ways crossing the edge keep their boundary nodes)")
	fs.StringVar(&o.name, "name", "", "map name for -import (default: extract file base name)")
	return fs, o
}

// parseBBox parses "minLat,minLng,maxLat,maxLng".
func parseBBox(s string) (geo.Rect, error) {
	if s == "" {
		return geo.Rect{}, nil
	}
	parts := strings.Split(s, ",")
	if len(parts) != 4 {
		return geo.Rect{}, fmt.Errorf("bbox %q: want minLat,minLng,maxLat,maxLng", s)
	}
	var v [4]float64
	for i, p := range parts {
		f, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return geo.Rect{}, fmt.Errorf("bbox %q: %w", s, err)
		}
		v[i] = f
	}
	r := geo.Rect{MinLat: v[0], MinLng: v[1], MaxLat: v[2], MaxLng: v[3]}
	if r.IsEmpty() {
		return geo.Rect{}, fmt.Errorf("bbox %q is empty", s)
	}
	return r, nil
}

// printStorageReport summarizes how a map is stored: the columnar
// footprint the memory-lean layout achieves, and the interning that
// achieves it.
func printStorageReport(label string, m *osm.Map) osm.StorageStats {
	m.Compact()
	st := m.StorageStats()
	fmt.Printf("%-28s nodes=%-8d ways=%-6d bytes/node=%-7.1f interned=%-6d tag-pairs=%d\n",
		label, st.Nodes, st.Ways, st.BytesPerNode, st.InternedStrings, st.TagPairs)
	return st
}

// runImport streams the extract into a columnar map and writes it as a v2
// snapshot the server can mmap.
func (o *options) runImport() (*osm.Map, *osm.ImportStats, error) {
	bbox, err := parseBBox(o.bbox)
	if err != nil {
		return nil, nil, err
	}
	name := o.name
	if name == "" {
		name = strings.TrimSuffix(strings.TrimSuffix(filepath.Base(o.importPath), ".xml"), ".osm")
	}
	f, err := os.Open(o.importPath)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	m, stats, err := osm.ImportExtract(bufio.NewReaderSize(f, 1<<20), osm.ImportOptions{Name: name, BBox: bbox})
	if err != nil {
		return nil, nil, err
	}
	if err := os.MkdirAll(o.out, 0o755); err != nil {
		return nil, nil, fmt.Errorf("mkdir: %w", err)
	}
	path := filepath.Join(o.out, "imported.snap")
	out, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	// Build the serving indexes now and persist them in the snapshot, so
	// the server that mmaps this file attaches them instead of paying the
	// full store.New rebuild on every boot.
	if err := m.WriteSnapshotVersionsIndexed(out, nil, store.New(m).PersistedIndex()); err != nil {
		out.Close()
		return nil, nil, fmt.Errorf("write %s: %w", path, err)
	}
	if err := out.Close(); err != nil {
		return nil, nil, err
	}
	fmt.Printf("imported %s: read %d nodes / %d ways, kept %d / %d (%d edge nodes, %d dropped refs)\n",
		o.importPath, stats.NodesRead, stats.WaysRead, stats.NodesKept, stats.WaysKept,
		stats.EdgeNodes, stats.DroppedRefs)
	fmt.Printf("wrote %s\n", path)
	printStorageReport(name, m)
	return m, stats, nil
}

// run generates the world and writes every map; returns the generated
// world for inspection.
func (o *options) run() (*worldgen.World, error) {
	params := worldgen.DefaultWorldParams()
	params.City.Seed = o.seed
	params.City.BlocksX = o.blocks
	params.City.BlocksY = o.blocks
	params.NumStores = o.stores
	params.StoreSeed = o.seed + 10

	w := worldgen.GenWorld(params)
	if err := os.MkdirAll(o.out, 0o755); err != nil {
		return nil, fmt.Errorf("mkdir: %w", err)
	}
	var printMu sync.Mutex
	write := func(name string, m *osm.Map) error {
		path := filepath.Join(o.out, name)
		f, err := os.Create(path)
		if err != nil {
			return fmt.Errorf("create %s: %v", path, err)
		}
		defer f.Close()
		if err := m.WriteXML(f); err != nil {
			return fmt.Errorf("write %s: %v", path, err)
		}
		printMu.Lock()
		fmt.Printf("wrote %-28s nodes=%-5d ways=%-4d\n", path, m.NodeCount(), m.WayCount())
		printMu.Unlock()
		return nil
	}
	// The maps are independent: serialize them on the bounded pool.
	errs := make([]error, len(w.Stores)+1)
	fanout.ForEach(context.Background(), len(w.Stores)+1, 0, func(_ context.Context, i int) {
		if i == 0 {
			errs[0] = write("city.osm.xml", w.Outdoor)
			return
		}
		errs[i] = write(fmt.Sprintf("store-%d.osm.xml", i-1), w.Stores[i-1].Map)
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	printStorageReport("city", w.Outdoor)
	for _, s := range w.Stores {
		printStorageReport(s.Map.Name, s.Map)
	}
	return w, nil
}

func main() {
	fs, o := newFlagSet("flame-worldgen")
	if err := fs.Parse(os.Args[1:]); err != nil {
		os.Exit(2)
	}
	if o.importPath != "" {
		if _, _, err := o.runImport(); err != nil {
			log.Fatal(err)
		}
		return
	}
	w, err := o.run()
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range w.Stores {
		fmt.Printf("  %s: %d products, %d beacons, portal %s\n",
			s.Map.Name, len(s.Products), len(s.Beacons), s.PortalID)
	}
}
