// Command flame-worldgen emits a synthetic world — an outdoor city map and
// indoor store maps — as OSM XML files, for feeding flame-server instances
// or offline inspection.
//
// Usage:
//
//	flame-worldgen -out ./world -stores 3 -blocks 8 -seed 1
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"openflame/internal/osm"
	"openflame/internal/worldgen"
)

func main() {
	out := flag.String("out", "world", "output directory")
	stores := flag.Int("stores", 3, "number of indoor store maps")
	blocks := flag.Int("blocks", 8, "city grid size (blocks per side)")
	seed := flag.Int64("seed", 1, "generation seed")
	flag.Parse()

	params := worldgen.DefaultWorldParams()
	params.City.Seed = *seed
	params.City.BlocksX = *blocks
	params.City.BlocksY = *blocks
	params.NumStores = *stores
	params.StoreSeed = *seed + 10

	w := worldgen.GenWorld(params)
	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatalf("mkdir: %v", err)
	}
	write := func(name string, m *osm.Map) {
		path := filepath.Join(*out, name)
		f, err := os.Create(path)
		if err != nil {
			log.Fatalf("create %s: %v", path, err)
		}
		defer f.Close()
		if err := m.WriteXML(f); err != nil {
			log.Fatalf("write %s: %v", path, err)
		}
		fmt.Printf("wrote %-28s nodes=%-5d ways=%-4d\n", path, m.NodeCount(), m.WayCount())
	}
	write("city.osm.xml", w.Outdoor)
	for i, s := range w.Stores {
		write(fmt.Sprintf("store-%d.osm.xml", i), s.Map)
		fmt.Printf("  %s: %d products, %d beacons, portal %s\n",
			s.Map.Name, len(s.Products), len(s.Beacons), s.PortalID)
	}
}
