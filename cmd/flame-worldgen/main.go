// Command flame-worldgen emits a synthetic world — an outdoor city map and
// indoor store maps — as OSM XML files, for feeding flame-server instances
// or offline inspection.
//
// Usage:
//
//	flame-worldgen -out ./world -stores 3 -blocks 8 -seed 1
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sync"

	"openflame/internal/fanout"
	"openflame/internal/osm"
	"openflame/internal/worldgen"
)

func main() {
	out := flag.String("out", "world", "output directory")
	stores := flag.Int("stores", 3, "number of indoor store maps")
	blocks := flag.Int("blocks", 8, "city grid size (blocks per side)")
	seed := flag.Int64("seed", 1, "generation seed")
	flag.Parse()

	params := worldgen.DefaultWorldParams()
	params.City.Seed = *seed
	params.City.BlocksX = *blocks
	params.City.BlocksY = *blocks
	params.NumStores = *stores
	params.StoreSeed = *seed + 10

	w := worldgen.GenWorld(params)
	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatalf("mkdir: %v", err)
	}
	var printMu sync.Mutex
	write := func(name string, m *osm.Map) error {
		path := filepath.Join(*out, name)
		f, err := os.Create(path)
		if err != nil {
			return fmt.Errorf("create %s: %v", path, err)
		}
		defer f.Close()
		if err := m.WriteXML(f); err != nil {
			return fmt.Errorf("write %s: %v", path, err)
		}
		printMu.Lock()
		fmt.Printf("wrote %-28s nodes=%-5d ways=%-4d\n", path, m.NodeCount(), m.WayCount())
		printMu.Unlock()
		return nil
	}
	// The maps are independent: serialize them on the bounded pool.
	errs := make([]error, len(w.Stores)+1)
	fanout.ForEach(context.Background(), len(w.Stores)+1, 0, func(_ context.Context, i int) {
		if i == 0 {
			errs[0] = write("city.osm.xml", w.Outdoor)
			return
		}
		errs[i] = write(fmt.Sprintf("store-%d.osm.xml", i-1), w.Stores[i-1].Map)
	})
	for _, err := range errs {
		if err != nil {
			log.Fatal(err)
		}
	}
	for _, s := range w.Stores {
		fmt.Printf("  %s: %d products, %d beacons, portal %s\n",
			s.Map.Name, len(s.Products), len(s.Beacons), s.PortalID)
	}
}
