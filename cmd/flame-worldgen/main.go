// Command flame-worldgen emits a synthetic world — an outdoor city map and
// indoor store maps — as OSM XML files, for feeding flame-server instances
// or offline inspection.
//
// Usage:
//
//	flame-worldgen -out ./world -stores 3 -blocks 8 -seed 1
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sync"

	"openflame/internal/fanout"
	"openflame/internal/osm"
	"openflame/internal/worldgen"
)

// options is the CLI surface, separated from main so tests can run the
// generator end to end.
type options struct {
	out    string
	stores int
	blocks int
	seed   int64
}

func newFlagSet(name string) (*flag.FlagSet, *options) {
	o := &options{}
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	fs.StringVar(&o.out, "out", "world", "output directory")
	fs.IntVar(&o.stores, "stores", 3, "number of indoor store maps")
	fs.IntVar(&o.blocks, "blocks", 8, "city grid size (blocks per side)")
	fs.Int64Var(&o.seed, "seed", 1, "generation seed")
	return fs, o
}

// run generates the world and writes every map; returns the generated
// world for inspection.
func (o *options) run() (*worldgen.World, error) {
	params := worldgen.DefaultWorldParams()
	params.City.Seed = o.seed
	params.City.BlocksX = o.blocks
	params.City.BlocksY = o.blocks
	params.NumStores = o.stores
	params.StoreSeed = o.seed + 10

	w := worldgen.GenWorld(params)
	if err := os.MkdirAll(o.out, 0o755); err != nil {
		return nil, fmt.Errorf("mkdir: %w", err)
	}
	var printMu sync.Mutex
	write := func(name string, m *osm.Map) error {
		path := filepath.Join(o.out, name)
		f, err := os.Create(path)
		if err != nil {
			return fmt.Errorf("create %s: %v", path, err)
		}
		defer f.Close()
		if err := m.WriteXML(f); err != nil {
			return fmt.Errorf("write %s: %v", path, err)
		}
		printMu.Lock()
		fmt.Printf("wrote %-28s nodes=%-5d ways=%-4d\n", path, m.NodeCount(), m.WayCount())
		printMu.Unlock()
		return nil
	}
	// The maps are independent: serialize them on the bounded pool.
	errs := make([]error, len(w.Stores)+1)
	fanout.ForEach(context.Background(), len(w.Stores)+1, 0, func(_ context.Context, i int) {
		if i == 0 {
			errs[0] = write("city.osm.xml", w.Outdoor)
			return
		}
		errs[i] = write(fmt.Sprintf("store-%d.osm.xml", i-1), w.Stores[i-1].Map)
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return w, nil
}

func main() {
	fs, o := newFlagSet("flame-worldgen")
	if err := fs.Parse(os.Args[1:]); err != nil {
		os.Exit(2)
	}
	w, err := o.run()
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range w.Stores {
		fmt.Printf("  %s: %d products, %d beacons, portal %s\n",
			s.Map.Name, len(s.Products), len(s.Beacons), s.PortalID)
	}
}
