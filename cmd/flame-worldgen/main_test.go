package main

import (
	"os"
	"path/filepath"
	"testing"

	"openflame/internal/geo"
	"openflame/internal/osm"
)

func TestFlagDefaultsAndRoundTrip(t *testing.T) {
	fs, o := newFlagSet("flame-worldgen")
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if o.out != "world" || o.stores != 3 || o.blocks != 8 || o.seed != 1 {
		t.Fatalf("defaults changed: %+v", o)
	}

	fs, o = newFlagSet("flame-worldgen")
	if err := fs.Parse([]string{"-out", "/tmp/w", "-stores", "2", "-blocks", "4", "-seed", "9"}); err != nil {
		t.Fatal(err)
	}
	if o.out != "/tmp/w" || o.stores != 2 || o.blocks != 4 || o.seed != 9 {
		t.Fatalf("flags lost: %+v", o)
	}
}

// TestRunWritesWorld smoke-tests the full generation path: one city map
// plus one file per store land in the output directory.
func TestRunWritesWorld(t *testing.T) {
	dir := t.TempDir()
	o := &options{out: dir, stores: 1, blocks: 2, seed: 7}
	w, err := o.run()
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Stores) != 1 {
		t.Fatalf("generated %d stores, want 1", len(w.Stores))
	}
	for _, name := range []string{"city.osm.xml", "store-0.osm.xml"} {
		st, err := os.Stat(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s not written: %v", name, err)
		}
		if st.Size() == 0 {
			t.Fatalf("%s is empty", name)
		}
	}
	// The storage report runs after generation; the same stats must be
	// queryable and sane.
	st := w.Outdoor.StorageStats()
	if st.Nodes == 0 || st.BytesPerNode <= 0 || st.InternedStrings == 0 {
		t.Fatalf("storage stats degenerate: %+v", st)
	}
}

func TestBBoxFlagParsing(t *testing.T) {
	r, err := parseBBox("40.42, -80.02, 40.46, -79.92")
	if err != nil {
		t.Fatal(err)
	}
	if r.MinLat != 40.42 || r.MaxLng != -79.92 {
		t.Fatalf("parsed %+v", r)
	}
	for _, bad := range []string{"1,2,3", "a,b,c,d", "41,-80,40,-79"} {
		if _, err := parseBBox(bad); err == nil {
			t.Fatalf("bbox %q accepted", bad)
		}
	}
	if r, err := parseBBox(""); err != nil || r != (geo.Rect{}) {
		t.Fatalf("empty bbox: %+v %v", r, err)
	}
}

// TestRunImportWritesSnapshot smoke-tests the -import path end to end: a
// small extract streams through the importer, lands as a v2 snapshot, and
// loads back with the clip applied.
func TestRunImportWritesSnapshot(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "tiny.osm")
	doc := `<?xml version="1.0"?><osm version="0.6">
<node id="1" lat="40.43" lon="-80.00"><tag k="name" v="Kept Cafe"/><tag k="amenity" v="cafe"/></node>
<node id="2" lat="40.44" lon="-80.00"/>
<node id="3" lat="47.0" lon="-80.00"/>
<way id="1"><nd ref="1"/><nd ref="2"/><tag k="highway" v="residential"/></way>
</osm>`
	if err := os.WriteFile(src, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	o := &options{out: dir, importPath: src, bbox: "40.0,-81.0,41.0,-79.0"}
	m, stats, err := o.runImport()
	if err != nil {
		t.Fatal(err)
	}
	if stats.NodesRead != 3 || stats.NodesKept != 2 || stats.WaysKept != 1 {
		t.Fatalf("import stats: %+v", stats)
	}
	if m.Name != "tiny" {
		t.Fatalf("default name = %q", m.Name)
	}
	loaded, _, err := osm.LoadSnapshotFile(filepath.Join(dir, "imported.snap"))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NodeCount() != 2 || loaded.WayCount() != 1 {
		t.Fatalf("snapshot counts: %d nodes %d ways", loaded.NodeCount(), loaded.WayCount())
	}
	if n := loaded.Node(1); n == nil || n.Tags.Get(osm.TagName) != "Kept Cafe" {
		t.Fatalf("node 1: %+v", loaded.Node(1))
	}
}
