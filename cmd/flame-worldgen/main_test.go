package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestFlagDefaultsAndRoundTrip(t *testing.T) {
	fs, o := newFlagSet("flame-worldgen")
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if o.out != "world" || o.stores != 3 || o.blocks != 8 || o.seed != 1 {
		t.Fatalf("defaults changed: %+v", o)
	}

	fs, o = newFlagSet("flame-worldgen")
	if err := fs.Parse([]string{"-out", "/tmp/w", "-stores", "2", "-blocks", "4", "-seed", "9"}); err != nil {
		t.Fatal(err)
	}
	if o.out != "/tmp/w" || o.stores != 2 || o.blocks != 4 || o.seed != 9 {
		t.Fatalf("flags lost: %+v", o)
	}
}

// TestRunWritesWorld smoke-tests the full generation path: one city map
// plus one file per store land in the output directory.
func TestRunWritesWorld(t *testing.T) {
	dir := t.TempDir()
	o := &options{out: dir, stores: 1, blocks: 2, seed: 7}
	w, err := o.run()
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Stores) != 1 {
		t.Fatalf("generated %d stores, want 1", len(w.Stores))
	}
	for _, name := range []string{"city.osm.xml", "store-0.osm.xml"} {
		st, err := os.Stat(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s not written: %v", name, err)
		}
		if st.Size() == 0 {
			t.Fatalf("%s is empty", name)
		}
	}
}
