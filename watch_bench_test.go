// E22: streaming read path — push invalidation vs polling on a churning
// region.
//
// The comparison holds freshness fixed and measures cost. N polling
// clients re-run the same standing query every pollInterval, so their
// staleness is bounded by the interval and their HTTP bill grows with
// population × duration ÷ interval — every poll pays for a full search
// whether or not anything changed. N watchers subscribe once: the hub
// coalesces them onto one evaluation per change batch (they share a
// query group), and each delta is pushed the moment it is applied, so
// the HTTP bill is one request per watcher per stream lifetime and the
// freshness is event latency, not a polling interval.
//
// TestE22BenchArtifact (env-gated, `make bench-watch`) writes the
// machine-readable BENCH_watch.json and enforces the floors: the watch
// side must spend at least 10× fewer HTTP requests than the poll side
// while delivering fresher results (delta p95 under the poll interval),
// every watcher must converge on the final write, and the hub must have
// coalesced (evaluations scale with churn, not with population).
package openflame

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"openflame/internal/align"
	"openflame/internal/geo"
	"openflame/internal/mapserver"
	"openflame/internal/osm"
	"openflame/internal/wire"
	"openflame/internal/worldgen"
)

const (
	// e22Population is the client count on each side of the comparison.
	e22Population = 32
	// e22PollInterval is the polling side's freshness target: a poller is
	// at most this stale.
	e22PollInterval = 100 * time.Millisecond
	// e22ChurnInterval spaces the writes churning the watched region.
	e22ChurnInterval = 40 * time.Millisecond
	// e22Duration bounds each side's run; churn stops e22Settle before the
	// end so the final write's propagation is measured, not truncated.
	e22Duration = 2 * time.Second
	e22Settle   = 500 * time.Millisecond
)

// e22Fixture is one serving stack plus the subscription target: a store
// server and the node whose renames churn the standing query.
type e22Fixture struct {
	srv  *mapserver.Server
	ts   *httptest.Server
	node osm.NodeID
	near geo.LatLng
}

func e22Server(t testing.TB) *e22Fixture {
	t.Helper()
	entrance := geo.LatLng{Lat: 40.4415, Lng: -79.9955}
	bundle := worldgen.GenStore(worldgen.DefaultStoreParams("Corner Grocery", entrance))
	ga, err := align.FitGeo(bundle.Correspondences)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := mapserver.New(mapserver.Config{
		Name: "e22-grocery", Map: bundle.Map, Alignment: ga,
		MaxWatchers: 2 * e22Population,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	hit := srv.Search(wire.SearchRequest{Query: bundle.Products[0]})
	if len(hit.Results) == 0 {
		t.Fatalf("product %q not found", bundle.Products[0])
	}
	return &e22Fixture{srv: srv, ts: ts, node: hit.Results[0].NodeID, near: hit.Results[0].Position}
}

// e22Stamps records each churn write's timestamp: snapshot is safe to
// call while the churn runs (a write's stamp lands before its update is
// applied, so any observed "Xyzchurn n" has stamps[n-1] set); wait
// blocks until the churn goroutine exits and returns the full record.
type e22Stamps struct {
	mu   sync.Mutex
	t    []time.Time
	done chan struct{}
}

func newE22Stamps() *e22Stamps { return &e22Stamps{done: make(chan struct{})} }

func (s *e22Stamps) snapshot() []time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.t[:len(s.t):len(s.t)]
}

func (s *e22Stamps) wait() []time.Time {
	<-s.done
	return s.snapshot()
}

// e22Churn renames the target node "Xyzchurn <n>" every interval until
// ctx ends. The name always matches the standing query, so every write
// is an update delta, and the embedded counter lets observers compute
// per-write freshness against the stamp record.
func e22Churn(ctx context.Context, fx *e22Fixture, st *e22Stamps) {
	go func() {
		defer close(st.done)
		tick := time.NewTicker(e22ChurnInterval)
		defer tick.Stop()
		for n := 1; ; n++ {
			select {
			case <-ctx.Done():
				return
			case <-tick.C:
			}
			st.mu.Lock()
			st.t = append(st.t, time.Now())
			st.mu.Unlock()
			fx.srv.ApplyInventoryUpdate(fx.node, osm.Tags{"name": fmt.Sprintf("Xyzchurn %d", n)})
		}
	}()
}

func e22Query(fx *e22Fixture) wire.SearchRequest {
	near := fx.near
	return wire.SearchRequest{Query: "xyzchurn", Near: &near, MaxDistanceMeters: 500, Limit: 5}
}

// e22Observe parses "Xyzchurn <n>" results into per-write freshness: a
// result observed at `at` that first reveals write n contributes
// at-stamps[n-1]. lastSeen carries the observer's high-water mark.
func e22Observe(name string, at time.Time, stamps []time.Time, lastSeen *int, lats *[]time.Duration) {
	var n int
	if _, err := fmt.Sscanf(name, "Xyzchurn %d", &n); err != nil || n <= *lastSeen || n > len(stamps) {
		return
	}
	*lastSeen = n
	*lats = append(*lats, at.Sub(stamps[n-1]))
}

type e22Side struct {
	HTTPRequests int64 `json:"httpRequests"`
	// Observations counts writes whose first sighting contributed a
	// freshness sample (an observer can skip intermediates that a later
	// write superseded before it looked).
	Observations   int64   `json:"observations"`
	FinalConverged int     `json:"clientsConverged"`
	P50MS          float64 `json:"freshnessP50Ms"`
	P95MS          float64 `json:"freshnessP95Ms"`
}

func e22Percentile(lats []time.Duration, p float64) float64 {
	if len(lats) == 0 {
		return 0
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	idx := int(float64(len(lats)) * p / 100)
	if idx >= len(lats) {
		idx = len(lats) - 1
	}
	return float64(lats[idx]) / float64(time.Millisecond)
}

// e22Summarize folds the per-client tallies into one side of the
// comparison: writes is the churn total each client is judged against.
func e22Summarize(requests int64, finals []int, lats []time.Duration, writes int) e22Side {
	converged := 0
	for _, f := range finals {
		if f == writes {
			converged++
		}
	}
	return e22Side{
		HTTPRequests: requests, Observations: int64(len(lats)),
		FinalConverged: converged,
		P50MS:          e22Percentile(lats, 50), P95MS: e22Percentile(lats, 95),
	}
}

// e22Poll runs the polling population against a churn run and returns
// its side of the comparison plus the write count.
func e22Poll(t testing.TB, fx *e22Fixture, client *http.Client) (e22Side, int) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), e22Duration)
	defer cancel()
	churnCtx, churnCancel := context.WithTimeout(ctx, e22Duration-e22Settle)
	defer churnCancel()
	st := newE22Stamps()
	e22Churn(churnCtx, fx, st)
	body, err := json.Marshal(e22Query(fx))
	if err != nil {
		t.Fatal(err)
	}
	var requests atomic.Int64
	finals := make([]int, e22Population)
	latCh := make(chan []time.Duration, e22Population)
	var wg sync.WaitGroup
	for i := 0; i < e22Population; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var lats []time.Duration
			lastSeen := 0
			// Stagger the population across the interval so polls spread
			// out the way independent clients do.
			offset := time.Duration(i) * e22PollInterval / e22Population
			timer := time.NewTimer(offset)
			defer timer.Stop()
			for {
				select {
				case <-ctx.Done():
					finals[i] = lastSeen
					latCh <- lats
					return
				case <-timer.C:
				}
				timer.Reset(e22PollInterval)
				requests.Add(1)
				res, err := client.Post(fx.ts.URL+"/search", "application/json", bytes.NewReader(body))
				if err != nil {
					continue
				}
				var sr wire.SearchResponse
				err = json.NewDecoder(res.Body).Decode(&sr)
				_, _ = io.Copy(io.Discard, res.Body)
				res.Body.Close()
				if err != nil {
					continue
				}
				at := time.Now()
				for _, r := range sr.Results {
					e22Observe(r.Name, at, st.snapshot(), &lastSeen, &lats)
				}
			}
		}(i)
	}
	wg.Wait()
	var all []time.Duration
	for i := 0; i < e22Population; i++ {
		all = append(all, <-latCh...)
	}
	writes := len(st.wait())
	return e22Summarize(requests.Load(), finals, all, writes), writes
}

// e22Watch runs the watcher population: one subscription each, freshness
// measured per pushed delta. Churn is held until every watcher's init
// has landed, so the subscription cost (one request each) is paid before
// the first delta.
func e22Watch(t testing.TB, fx *e22Fixture, client *http.Client) (e22Side, int) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), e22Duration)
	defer cancel()
	st := newE22Stamps()
	body, err := json.Marshal(wire.SubscribeRequest{Query: e22Query(fx)})
	if err != nil {
		t.Fatal(err)
	}
	var requests atomic.Int64
	finals := make([]int, e22Population)
	latCh := make(chan []time.Duration, e22Population)
	ready := make(chan struct{}, e22Population)
	var wg sync.WaitGroup
	for i := 0; i < e22Population; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var lats []time.Duration
			lastSeen := 0
			defer func() {
				finals[i] = lastSeen
				latCh <- lats
			}()
			requests.Add(1)
			hr, err := http.NewRequestWithContext(ctx, http.MethodPost, fx.ts.URL+"/v1/watch", bytes.NewReader(body))
			if err != nil {
				t.Errorf("watcher %d: %v", i, err)
				return
			}
			hr.Header.Set("Content-Type", "application/json")
			res, err := client.Do(hr)
			if err != nil {
				t.Errorf("watcher %d: %v", i, err)
				return
			}
			defer res.Body.Close()
			if res.StatusCode != http.StatusOK {
				t.Errorf("watcher %d: status %d", i, res.StatusCode)
				return
			}
			sc := bufio.NewScanner(res.Body)
			sc.Buffer(make([]byte, 0, 64<<10), 8<<20)
			var data []byte
			first := true
			for sc.Scan() {
				line := sc.Bytes()
				if len(line) == 0 {
					if len(data) == 0 {
						continue
					}
					var ev wire.Event
					if err := json.Unmarshal(data, &ev); err != nil {
						t.Errorf("watcher %d: bad frame: %v", i, err)
						return
					}
					data = nil
					if first {
						first = false
						ready <- struct{}{}
					}
					at := time.Now()
					stamps := st.snapshot()
					for _, r := range ev.Updated {
						e22Observe(r.Name, at, stamps, &lastSeen, &lats)
					}
					continue
				}
				if rest, ok := bytes.CutPrefix(line, []byte("data:")); ok {
					data = append(data, bytes.TrimPrefix(rest, []byte(" "))...)
				}
			}
		}(i)
	}
	for i := 0; i < e22Population; i++ {
		select {
		case <-ready:
		case <-ctx.Done():
			t.Fatal("watchers never initialized")
		}
	}
	churnCtx, churnCancel := context.WithTimeout(ctx, e22Duration-e22Settle)
	defer churnCancel()
	e22Churn(churnCtx, fx, st)
	wg.Wait()
	var all []time.Duration
	for i := 0; i < e22Population; i++ {
		all = append(all, <-latCh...)
	}
	writes := len(st.wait())
	return e22Summarize(requests.Load(), finals, all, writes), writes
}

// TestE22BenchArtifact runs the comparison and writes BENCH_watch.json
// (when BENCH_WATCH_JSON names the output path; `make bench-watch` sets
// it). Skipped in the ordinary test run — it holds churn for several
// seconds per side.
func TestE22BenchArtifact(t *testing.T) {
	out := os.Getenv("BENCH_WATCH_JSON")
	if out == "" {
		t.Skip("set BENCH_WATCH_JSON=<path> (or run `make bench-watch`) to produce the artifact")
	}
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        4096,
		MaxIdleConnsPerHost: 4096,
	}}
	defer client.CloseIdleConnections()

	pollFx := e22Server(t)
	poll, pollWrites := e22Poll(t, pollFx, client)
	pollFx.ts.Close()

	watchFx := e22Server(t)
	watch, watchWrites := e22Watch(t, watchFx, client)
	hub := watchFx.srv.WatchStats()

	artifact := struct {
		Experiment      string  `json:"experiment"`
		Population      int     `json:"population"`
		PollIntervalMS  float64 `json:"pollIntervalMs"`
		ChurnIntervalMS float64 `json:"churnIntervalMs"`
		DurationMS      float64 `json:"durationMs"`
		PollWrites      int     `json:"pollSideWrites"`
		WatchWrites     int     `json:"watchSideWrites"`
		Poll            e22Side `json:"poll"`
		Watch           e22Side `json:"watch"`
		HTTPRatio       float64 `json:"pollToWatchHTTPRatio"`
		HubDrains       uint64  `json:"hubDrains"`
		HubEvals        uint64  `json:"hubEvals"`
		HubEvents       uint64  `json:"hubEventsDelivered"`
	}{
		Experiment:      "E22",
		Population:      e22Population,
		PollIntervalMS:  float64(e22PollInterval) / float64(time.Millisecond),
		ChurnIntervalMS: float64(e22ChurnInterval) / float64(time.Millisecond),
		DurationMS:      float64(e22Duration) / float64(time.Millisecond),
		PollWrites:      pollWrites,
		WatchWrites:     watchWrites,
		Poll:            poll,
		Watch:           watch,
		HTTPRatio:       float64(poll.HTTPRequests) / float64(watch.HTTPRequests),
		HubDrains:       hub.Drains,
		HubEvals:        hub.Evals,
		HubEvents:       hub.Events,
	}
	data, err := json.MarshalIndent(artifact, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("E22: http poll=%d watch=%d (%.1fx) | freshness p95 poll=%.1fms watch=%.1fms | converged poll=%d/%d watch=%d/%d | hub evals=%d for %d writes",
		poll.HTTPRequests, watch.HTTPRequests, artifact.HTTPRatio,
		poll.P95MS, watch.P95MS,
		poll.FinalConverged, e22Population, watch.FinalConverged, e22Population,
		hub.Evals, watchWrites)

	// The floors under test. Cost: the whole point of push is that N
	// standing queries stop costing N×(duration/interval) searches.
	if watch.HTTPRequests*10 > poll.HTTPRequests {
		t.Errorf("watch side spent %d HTTP requests vs poll's %d — less than the 10x saving the design claims",
			watch.HTTPRequests, poll.HTTPRequests)
	}
	// Freshness: pushed deltas must beat the polling interval — matched
	// (better) staleness is the premise of the cost comparison.
	if watch.Observations > 0 && watch.P95MS > float64(e22PollInterval)/float64(time.Millisecond) {
		t.Errorf("watch freshness p95 %.1fms exceeds the %.0fms poll interval — not an apples-to-apples saving",
			watch.P95MS, float64(e22PollInterval)/float64(time.Millisecond))
	}
	if watch.Observations == 0 || watchWrites == 0 {
		t.Errorf("watch side observed nothing (%d observations, %d writes) — the experiment never exercised push",
			watch.Observations, watchWrites)
	}
	// Delivery: every watcher converges on the final write (deltas may
	// batch, but nothing is lost).
	if watch.FinalConverged != e22Population {
		t.Errorf("only %d/%d watchers converged on the final write", watch.FinalConverged, e22Population)
	}
	// Coalescing: evaluations scale with churn (one per drained batch),
	// not with the watcher population.
	if watchWrites > 0 && hub.Evals > uint64(watchWrites)+uint64(e22Population) {
		t.Errorf("hub ran %d evaluations for %d writes and %d watchers — population-coupled evaluation, coalescing is broken",
			hub.Evals, watchWrites, e22Population)
	}
}
