package openflame

import (
	"bytes"
	"context"
	"fmt"
	"net/http/httptest"
	"testing"

	"openflame/internal/client"
	"openflame/internal/core"
	"openflame/internal/geo"
	"openflame/internal/mapserver"
	"openflame/internal/netsim"
	"openflame/internal/osm"
	"openflame/internal/worldgen"
)

// ============ E17: session consistency under replica lag ================
// The session tokens close the read-path consistency gap replica fan-out
// opened: reads are served by ANY set member, so a client that has
// observed a write on one replica can fail over to a lagging sibling and
// read that write out of existence. E17 measures exactly that scenario —
// the origin takes writes and flaps (every other read fails over), one
// sibling lags frozen at the first write (anti-entropy withheld), one
// stays caught up. Each op is write → fresh read through the origin →
// forced-failover read:
//
//   - no-session: the failover lands on the lagging sibling, which happily
//     answers from its frozen view — the client observes value N and then
//     value 1, a consistency regression on every op (stalereads/op = 1).
//   - session: the lagging sibling cannot vouch for the mark the fresh
//     read minted and answers 412 stale-replica; the plan fails over once
//     more to the caught-up sibling — zero stale reads, zero unserved.
//
// Reported metrics: stalereads/op (reads observing an older value than the
// same client already read) and unserved/op (reads no replica answered).
// The session's consistency costs one extra refused hop per failover read
// (the 412), visible in ns/op.

// e17CloneMap deep-copies a map through the snapshot codec.
func e17CloneMap(b *testing.B, m *osm.Map) *osm.Map {
	b.Helper()
	var buf bytes.Buffer
	if err := m.WriteSnapshot(&buf); err != nil {
		b.Fatal(err)
	}
	c, err := osm.ReadSnapshot(&buf)
	if err != nil {
		b.Fatal(err)
	}
	return c
}

// e17Federation stands up the lag-with-failover scenario: three replicas
// of the outdoor map in set "city". city-0 (the write origin) flaps —
// answers one client request, fails the next, forever — so every op gets
// one fresh read and one forced failover; city-1 is the lagging sibling
// (frozen after one initial sync); city-2 stays caught up. Anti-entropy
// pulls ride a clean side endpoint that bypasses the fault injector, so
// the flap schedule counts client reads only.
func e17Federation(b *testing.B, w *worldgen.World) (fed *core.Federation, origin, lagging, caughtUp *core.ServerHandle, node *osm.Node, pos geo.LatLng) {
	b.Helper()
	fed, err := core.NewFederation()
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(fed.Close)
	handles := make([]*core.ServerHandle, 3)
	for i := range handles {
		srv, err := mapserver.New(mapserver.Config{
			Name: fmt.Sprintf("city-%d", i),
			Map:  e17CloneMap(b, w.Outdoor),
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			handles[i], err = fed.AddFaultyReplica(srv, "city", netsim.NewFaultSchedule(
				netsim.FaultPhase{Mode: netsim.FaultNone, Requests: 1},
				netsim.FaultPhase{Mode: netsim.FaultError, Requests: 1},
			).Loop())
		} else {
			handles[i], err = fed.AddReplica(srv, "city")
		}
		if err != nil {
			b.Fatal(err)
		}
	}
	origin, lagging, caughtUp = handles[0], handles[1], handles[2]
	clean := httptest.NewServer(origin.Server.Handler())
	b.Cleanup(clean.Close)
	lagging.Syncer.SetPeers([]string{clean.URL})
	caughtUp.Syncer.SetPeers([]string{clean.URL})

	origin.Server.Store().Map().Nodes(func(n *osm.Node) bool {
		if n.Tags.Get(osm.TagName) != "" {
			node = n
			return false
		}
		return true
	})
	if node == nil {
		b.Fatal("no named node")
	}
	return fed, origin, lagging, caughtUp, node, origin.Server.Store().Map().NodePosition(node)
}

func BenchmarkE17_SessionConsistencyUnderLag(b *testing.B) {
	world := worldgen.GenWorld(worldgen.DefaultWorldParams())
	for _, mode := range []struct {
		name    string
		session bool
	}{
		{"no-session", false},
		{"session", true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			fed, origin, lagging, caughtUp, node, pos := e17Federation(b, world)
			ctx := context.Background()
			write := func(v int) {
				tags := node.Tags.Clone()
				tags[osm.TagName] = fmt.Sprintf("xyzstock %d", v)
				if !origin.Server.ApplyInventoryUpdate(node.ID, tags) {
					b.Fatal("write refused")
				}
			}
			c := fed.NewClient()
			c.SearchRadiusMeters = 100
			var opts []client.CallOption
			if mode.session {
				opts = append(opts, client.WithSession(client.NewSession()))
			}
			read := func() (int, bool) {
				got := c.SearchV2(ctx, "xyzstock", pos, 5, opts...)
				if len(got) == 0 {
					return 0, false
				}
				var n int
				if _, err := fmt.Sscanf(got[0].Name, "xyzstock %d", &n); err != nil {
					b.Fatalf("unparsable result %q", got[0].Name)
				}
				return n, true
			}
			sync := func(h *core.ServerHandle) {
				if _, err := h.Syncer.SyncOnce(ctx); err != nil {
					b.Fatalf("sync: %v", err)
				}
			}

			// Freeze the lagging sibling at the first write; from here only
			// city-2 follows the origin.
			v := 1
			write(v)
			sync(lagging)
			lagging.Syncer.SetPeers(nil)

			stale, unserved := 0, 0
			lastSeen := 0
			observe := func(got int, ok bool) {
				switch {
				case !ok:
					unserved++
				case got < lastSeen:
					stale++
				default:
					lastSeen = got
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				v++
				write(v)
				sync(caughtUp)
				// Fresh read: the origin is up on this request and serves
				// the new value (the session minting its mark).
				got, ok := read()
				if !ok || got != v {
					b.Fatalf("fresh read = (%d, %v), want %d", got, ok, v)
				}
				observe(got, ok)
				// Failover read: the origin fails this request; without a
				// session the frozen sibling serves value 1 — a regression
				// — while the session rides the 412 to the caught-up one.
				observe(read())
			}
			b.StopTimer()
			b.ReportMetric(float64(stale)/float64(b.N), "stalereads/op")
			b.ReportMetric(float64(unserved)/float64(b.N), "unserved/op")
			if mode.session && (stale != 0 || unserved != 0) {
				b.Fatalf("session mode: %d stale, %d unserved", stale, unserved)
			}
			if !mode.session && stale == 0 {
				b.Fatal("no-session mode observed no stale reads: the scenario lost its lag")
			}
		})
	}
}
