// Worldscale — a larger federation: a 12x12-block city with six stores,
// each an independent map server, exercising the properties the paper
// argues federation buys:
//
//   - discovery scales through DNS caching (cold vs warm lookups),
//   - map updates are per-server and invisible to everyone else,
//   - the client composites tiles from overlapping servers into one view.
//
// The stitched tile (outdoor streets + indoor aisle overlay) is written to
// the working directory as worldscale-tile.png.
package main

import (
	"bytes"
	"context"
	"fmt"
	"image/color"
	"log"
	"os"
	"time"

	"openflame/internal/core"
	"openflame/internal/fanout"
	"openflame/internal/geo"
	"openflame/internal/osm"
	"openflame/internal/raster"
	"openflame/internal/tiles"
	"openflame/internal/worldgen"
)

func main() {
	params := worldgen.DefaultWorldParams()
	params.City.BlocksX, params.City.BlocksY = 12, 12
	params.NumStores = 6
	world := worldgen.GenWorld(params)
	fed, err := core.DeployWorld(world)
	if err != nil {
		log.Fatalf("deploy: %v", err)
	}
	defer fed.Close()
	fmt.Printf("federation: %d map servers over a %dx%d-block city\n",
		len(fed.Servers), params.City.BlocksX, params.City.BlocksY)

	// --- discovery caching -------------------------------------------------
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	c := fed.NewClient()
	store := world.Stores[0]
	entrance := store.Correspondences[len(store.Correspondences)-1].World

	cold := time.Now()
	anns := c.DiscoverV2(ctx, entrance)
	coldDur := time.Since(cold)
	warm := time.Now()
	c.DiscoverV2(ctx, entrance)
	warmDur := time.Since(warm)
	fmt.Printf("\ndiscovery at a store entrance: %d servers\n", len(anns))
	fmt.Printf("  cold (full DNS walk): %v\n", coldDur)
	fmt.Printf("  warm (cached):        %v  (%.0fx faster)\n",
		warmDur, float64(coldDur)/float64(warmDur+1))

	// --- independent updates ------------------------------------------------
	h := fed.FindServer("corner-grocery")
	if h == nil {
		// store names rotate; find any store server
		for _, cand := range fed.Servers {
			if cand.Server.Name() != "world-map" {
				h = cand
				break
			}
		}
	}
	shelf := h.Server.Store().Map().FindNodes(func(n *osm.Node) bool {
		return n.Tags.Has(osm.TagProduct)
	})[0]
	start := time.Now()
	h.Server.ApplyInventoryUpdate(shelf.ID, osm.Tags{
		osm.TagName: "limited-edition matcha shelf", osm.TagProduct: "limited-edition matcha",
		osm.TagIndoor: "yes"})
	fmt.Printf("\ninventory update on %q took %v — no other server touched,\n"+
		"no global reindex (the centralized baseline rebuilds the world).\n",
		h.Server.Name(), time.Since(start))

	// --- federated tile stitching -------------------------------------------
	// One tile view composites layers from every covering server; fetch
	// them concurrently and reassemble in discovery order.
	coord := tiles.FromLatLng(entrance, 18)
	layerSlots := make([]*raster.Canvas, len(anns))
	fanout.ForEach(ctx, len(anns), 0, func(ctx context.Context, i int) {
		png, err := c.TilePNGV2(ctx, anns[i].URL, coord.Z, coord.X, coord.Y)
		if err != nil {
			return
		}
		img, err := raster.DecodePNG(bytes.NewReader(png))
		if err != nil {
			return
		}
		canvas := raster.NewCanvas(tiles.Size, tiles.Size, color.RGBA{0, 0, 0, 0})
		for y := 0; y < tiles.Size; y++ {
			for x := 0; x < tiles.Size; x++ {
				canvas.Img.Set(x, y, img.At(x, y))
			}
		}
		layerSlots[i] = canvas
		fmt.Printf("  fetched tile layer from %s (%d bytes)\n", anns[i].Name, len(png))
	})
	var layers []*raster.Canvas
	var bgs []color.RGBA
	for _, l := range layerSlots {
		if l != nil {
			layers = append(layers, l)
			bgs = append(bgs, tiles.DefaultStyle().Background)
		}
	}
	if len(layers) > 0 {
		stitched := tiles.Stitch(layers, bgs)
		var buf bytes.Buffer
		if err := stitched.EncodePNG(&buf); err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile("worldscale-tile.png", buf.Bytes(), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nwrote worldscale-tile.png: %d layers composited over tile %s\n",
			len(layers), coord)
	}

	// --- per-server statistics ----------------------------------------------
	fmt.Println("\nper-server state (independently owned and operated):")
	for _, hh := range fed.Servers {
		info := hh.Server.Info()
		fmt.Printf("  %-22s %3d coverage cells, %2d portals, frame=%s\n",
			info.Name, len(info.Coverage), len(info.Portals), info.FrameKind)
	}
	_ = geo.LatLng{}
}
