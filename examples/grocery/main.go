// Grocery navigation — the paper's §2 example application, end to end:
//
//  1. The user searches for a product ("a particular flavor of seaweed")
//     near their street location; OpenFLAME discovers the grocery store's
//     own map server and finds the exact shelf.
//  2. The client stitches a route: the world map leads along streets to
//     the storefront, the store's map continues to the shelf.
//  3. The user walks the route. Outdoors they localize with (noisy) GPS;
//     the moment they cross the entrance portal the client switches to the
//     store's WiFi-fingerprint localization, fused with an IMU prior —
//     precise guidance where GPS fails.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	"openflame/internal/align"
	"openflame/internal/core"
	"openflame/internal/geo"
	"openflame/internal/loc"
	"openflame/internal/worldgen"
)

func main() {
	world := worldgen.GenWorld(worldgen.DefaultWorldParams())
	fed, err := core.DeployWorld(world)
	if err != nil {
		log.Fatalf("deploy: %v", err)
	}
	defer fed.Close()

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	c := fed.NewClient()
	// A slow federation member is skipped after 2s instead of stalling the
	// walk (the first-error-tolerant merge of §5.2's client aggregation).
	c.PerServerTimeout = 2 * time.Second
	rng := rand.New(rand.NewSource(2025))
	store := world.Stores[0]
	product := "roasted seaweed"
	entranceTruth := store.Correspondences[len(store.Correspondences)-1].World
	// The user stands on the street two blocks from the store.
	userPos := geo.Offset(geo.Offset(entranceTruth, 200, 180), 15, 270)

	// --- 1. Product search -------------------------------------------------
	fmt.Printf("user at %s searches for %q\n", userPos, product)
	results := c.SearchV2(ctx, product, userPos, 5)
	if len(results) == 0 {
		log.Fatal("product not found anywhere nearby")
	}
	shelfHit := results[0]
	fmt.Printf("  found %q %0.0fm away via map server %q\n",
		shelfHit.Name, shelfHit.DistanceMeters, shelfHit.Source)

	// --- 2. Stitched route -------------------------------------------------
	route, err := c.RouteV2(ctx, userPos, shelfHit.Position)
	if err != nil {
		log.Fatalf("route: %v", err)
	}
	fmt.Printf("\nstitched route: %.0f s, %.0f m, %d legs\n",
		route.CostSeconds, route.LengthMeters, len(route.Legs))
	for i, leg := range route.Legs {
		fmt.Printf("  leg %d via %-20s %6.0f s\n", i+1, leg.Server, leg.CostSeconds)
	}

	// --- 3. Walk the route with localization hand-off ----------------------
	ga, err := align.FitGeo(store.Correspondences)
	if err != nil {
		log.Fatal(err)
	}
	entrance := entranceTruth
	gps := loc.DefaultGPSModel()
	points := route.Points()
	fmt.Printf("\nwalking %d waypoints:\n", len(points))
	var (
		indoor     bool
		gpsErrSum  float64
		gpsN       int
		wifiErrSum float64
		wifiN      int
	)
	dr := loc.NewDeadReckoner(geo.Point{}, 0.03, rng)
	prevLocal := geo.Point{}
	for i, p := range points {
		truth := p.Position
		// Crossing within 3m of the portal flips the environment.
		if !indoor && geo.DistanceMeters(truth, entrance) < 3 {
			indoor = true
			fmt.Printf("  [%2d] crossed portal %q — switching to store localization\n", i, store.PortalID)
			dr.Reset(ga.ToLocal(truth))
			prevLocal = ga.ToLocal(truth)
		}
		if !indoor {
			cue, ok := gps.Sample(truth, false, rng)
			if ok {
				gpsErrSum += geo.DistanceMeters(truth, *cue.GPS)
				gpsN++
			}
			continue
		}
		// Indoors: synthesize a WiFi cue at the true local position, ask
		// the federation to localize, fuse with the IMU prior.
		truthLocal := ga.ToLocal(truth)
		dr.Advance(truthLocal.Sub(prevLocal))
		prevLocal = truthLocal
		cue := loc.SynthesizeRSSICue(truthLocal, store.Beacons, loc.DefaultRadioModel(), rng)
		prior, priorSigma := dr.Estimate()
		_ = prior
		fix, ok := c.LocalizeV2(ctx, truth, []loc.Cue{cue}, ga.ToWorld(prior), priorSigma+5)
		if !ok {
			fmt.Printf("  [%2d] no indoor fix!\n", i)
			continue
		}
		err := fix.Local.Dist(truthLocal)
		wifiErrSum += err
		wifiN++
		dr.Reset(fix.Local) // fuse: re-anchor the IMU on the accepted fix
		fmt.Printf("  [%2d] indoor fix via %-16s err=%.1fm (σ=%.1fm)\n",
			i, fix.Source, err, fix.SigmaMeters)
	}
	fmt.Printf("\nlocalization summary:\n")
	if gpsN > 0 {
		fmt.Printf("  outdoors: GPS mean error %.1f m over %d samples\n", gpsErrSum/float64(gpsN), gpsN)
	}
	if wifiN > 0 {
		fmt.Printf("  indoors:  WiFi fingerprint mean error %.1f m over %d samples\n", wifiErrSum/float64(wifiN), wifiN)
		indoorGPS := gps.IndoorSigmaMeters
		fmt.Printf("  (indoor GPS would have been ~%.0f m — the store's map made precise guidance possible)\n", indoorGPS)
	}
	fmt.Printf("\narrived at %q.\n", shelfHit.Name)
}
