// Quickstart: stand up a complete OpenFLAME federation in-process — a city
// "world map" server, three independently-operated grocery store servers,
// and the DNS discovery tree — then run discovery, a federated product
// search, and a street-to-shelf route through the public client API.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"openflame/internal/core"
	"openflame/internal/geo"
	"openflame/internal/worldgen"
)

func main() {
	// One context bounds the whole session: every discovery and every
	// fanned-out server call below is cancelled if the deadline passes.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// 1. Generate a synthetic world: an 8x8-block city and three stores
	//    with their own local-frame indoor maps.
	world := worldgen.GenWorld(worldgen.DefaultWorldParams())
	fmt.Printf("world: %d outdoor nodes, %d stores\n",
		world.Outdoor.NodeCount(), len(world.Stores))

	// 2. Deploy the federation: every map gets its own HTTP map server,
	//    and every server registers its coverage cells in the DNS.
	fed, err := core.DeployWorld(world)
	if err != nil {
		log.Fatalf("deploy: %v", err)
	}
	defer fed.Close()
	for _, h := range fed.Servers {
		info := h.Server.Info()
		fmt.Printf("  server %-20s %-28s %2d coverage cells (%s frame)\n",
			info.Name, h.URL, len(info.Coverage), info.FrameKind)
	}

	// 3. A client device discovers the servers around a store entrance.
	c := fed.NewClient()
	store := world.Stores[0]
	entrance := store.Correspondences[len(store.Correspondences)-1].World
	fmt.Printf("\ndiscovery at %s:\n", entrance)
	for _, a := range c.DiscoverV2(ctx, entrance) {
		fmt.Printf("  %-20s level=%d %s\n", a.Name, a.Level, a.URL)
	}

	// 4. Federated location-based search: the product lives only in the
	//    store's own map; the world map knows just the storefront. The
	//    per-server requests fan out concurrently (c.MaxConcurrency).
	product := store.Products[0]
	fmt.Printf("\nsearch %q near the store:\n", product)
	for i, r := range c.SearchV2(ctx, product, geo.Offset(entrance, 50, 180), 5) {
		fmt.Printf("  %d. %-32s %5.0fm via %s\n", i+1, r.Name, r.DistanceMeters, r.Source)
	}

	// 5. A stitched route: the world map routes along streets to the
	//    storefront; the store's map takes over to the shelf.
	shelf, err := c.GeocodeV2(ctx, product+" shelf, "+store.Map.Name)
	if err != nil {
		log.Fatalf("geocode: %v", err)
	}
	from := geo.LatLng{Lat: 40.4400, Lng: -79.9990}
	route, err := c.RouteV2(ctx, from, shelf.Position)
	if err != nil {
		log.Fatalf("route: %v", err)
	}
	fmt.Printf("\nroute to the shelf: %.0f s, %.0f m, %d servers\n",
		route.CostSeconds, route.LengthMeters, route.ServersUsed)
	for _, leg := range route.Legs {
		fmt.Printf("  leg via %-20s %6.0f s (%d points)\n", leg.Server, leg.CostSeconds, len(leg.Points))
	}
}
