// Churn: a living federation under membership change. Three replicas of
// the city map join one replica set; a client's searches cost ONE request
// against the set (not three); an inventory update landing on a single
// replica converges to its siblings by anti-entropy; a replica drains and
// leaves under live traffic, and the client follows the membership without
// restarting — the OpenFLAME ecosystem as the paper pitches it: servers
// "managed independently", joining and leaving with no central authority.
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"time"

	"openflame/internal/core"
	"openflame/internal/geo"
	"openflame/internal/mapserver"
	"openflame/internal/osm"
	"openflame/internal/worldgen"
)

func main() {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// 1. One city map, cloned three times: three independently-run servers
	//    with identical content, registered as replica set "city".
	world := worldgen.GenWorld(worldgen.DefaultWorldParams())
	fed, err := core.NewFederation()
	if err != nil {
		log.Fatalf("federation: %v", err)
	}
	defer fed.Close()
	fed.Registry.TTLSeconds = 0 // demo-speed DNS: records roll over immediately

	for i := 0; i < 3; i++ {
		srv, err := mapserver.New(mapserver.Config{
			Name:              fmt.Sprintf("city-%d", i),
			Map:               clone(world.Outdoor),
			QueryCacheEntries: 256,
		})
		if err != nil {
			log.Fatalf("server %d: %v", i, err)
		}
		if _, err := fed.AddReplica(srv, "city"); err != nil {
			log.Fatalf("add replica %d: %v", i, err)
		}
	}
	fmt.Printf("replica set \"city\": %d members, membership epoch %d\n",
		len(fed.Servers), fed.Registry.Epoch())

	// 2. A client plans one request per replica set: three replicas, ONE
	//    HTTP request per search. (Its default 1s announcement TTL is the
	//    churn window the sleep below waits out.)
	c := fed.NewClient()
	pos := geo.LatLng{Lat: 40.4400, Lng: -79.9990}
	results := c.SearchV2(ctx, "Street", pos, 3)
	fmt.Printf("\nsearch across the set: %d results from %q, %d HTTP request(s)\n",
		len(results), results[0].Source, c.RequestCount())

	// 3. Independent map management: a shop restocks, the update lands on
	//    ONE replica, anti-entropy converges the set.
	node := firstNamed(fed.Servers[1].Server.Store().Map())
	tags := node.Tags.Clone()
	tags[osm.TagName] = "Churnproof Espresso Bar"
	fed.Servers[1].Server.ApplyInventoryUpdate(node.ID, tags)
	applied, err := fed.SyncReplicas(ctx)
	if err != nil {
		log.Fatalf("sync: %v", err)
	}
	fmt.Printf("\ninventory update on city-1, anti-entropy applied %d change(s):\n", applied)
	for _, h := range fed.Servers {
		fmt.Printf("  %-8s change-log position %d\n", h.Server.Name(), h.Server.ChangeSeq())
	}
	hits := c.SearchV2(ctx, "churnproof espresso", pos, 3)
	fmt.Printf("  client finds %q via %s — whichever replica answered, it converged\n",
		hits[0].Name, hits[0].Source)

	// 4. Churn under live traffic: drain one member (it leaves discovery,
	//    keeps serving stragglers), then remove it. The client's next
	//    searches keep succeeding without restart.
	if _, err := fed.Drain("city-0"); err != nil {
		log.Fatalf("drain: %v", err)
	}
	if err := fed.RemoveServer("city-0"); err != nil {
		log.Fatalf("remove: %v", err)
	}
	time.Sleep(1200 * time.Millisecond) // one announcement TTL
	results = c.SearchV2(ctx, "Street", pos, 3)
	fmt.Printf("\nafter city-0 left (epoch %d): search still answers via %q; discovery sees:\n",
		fed.Registry.Epoch(), results[0].Source)
	for _, a := range c.DiscoverV2(ctx, pos) {
		fmt.Printf("  %-8s rs=%s epoch=%d\n", a.Name, a.ReplicaSet, a.Epoch)
	}
}

func clone(m *osm.Map) *osm.Map {
	var buf bytes.Buffer
	if err := m.WriteSnapshot(&buf); err != nil {
		log.Fatalf("clone: %v", err)
	}
	c, err := osm.ReadSnapshot(&buf)
	if err != nil {
		log.Fatalf("clone: %v", err)
	}
	return c
}

func firstNamed(m *osm.Map) *osm.Node {
	var found *osm.Node
	m.Nodes(func(n *osm.Node) bool {
		if n.Tags.Get(osm.TagName) != "" {
			found = n
			return false
		}
		return true
	})
	return found
}
