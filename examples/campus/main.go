// Campus — the fine-grained security and privacy model of §5.3.
//
// A university deploys its own campus map server with per-service policies:
//
//   - tiles:    public (anyone can view the campus map)
//   - search:   university accounts only (user-level control)
//   - localize: university accounts *via the campus-nav app* only
//     (user-level + application-level control)
//   - route:    default-deny for everyone else (service-level control)
//
// The example exercises the same requests as three principals — an
// anonymous tourist, a student with a third-party app, and a student with
// the official app — and shows exactly which calls each one can make.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"openflame/internal/core"
	"openflame/internal/discovery"
	"openflame/internal/geo"
	"openflame/internal/loc"
	"openflame/internal/mapserver"
	"openflame/internal/wire"
	"openflame/internal/worldgen"
)

func main() {
	// The "campus": a generated indoor map standing in for a university
	// building, with beacons for localization.
	entrance := geo.LatLng{Lat: 40.4433, Lng: -79.9436}
	sp := worldgen.DefaultStoreParams("Wean Hall", entrance)
	sp.Aisles = 4 // corridors
	campus := worldgen.GenStore(sp)

	policy := &mapserver.Policy{
		Default: mapserver.Rule{}, // deny
		PerService: map[wire.Service]mapserver.Rule{
			wire.SvcTiles:    {Public: true},
			wire.SvcSearch:   {UserDomains: []string{"cmu.edu"}},
			wire.SvcGeocode:  {UserDomains: []string{"cmu.edu"}},
			wire.SvcLocalize: {UserDomains: []string{"cmu.edu"}, Apps: []string{"campus-nav"}},
		},
	}
	srv, err := mapserver.New(mapserver.Config{
		Name:      "cmu-campus",
		Map:       campus.Map,
		Beacons:   campus.Beacons,
		Fiducials: campus.Fiducials,
		Auth:      policy,
	})
	if err != nil {
		log.Fatalf("build: %v", err)
	}

	fed, err := core.NewFederation()
	if err != nil {
		log.Fatal(err)
	}
	defer fed.Close()
	if _, err := fed.AddServer(srv); err != nil {
		log.Fatal(err)
	}

	principals := []struct {
		label string
		user  string
		app   string
	}{
		{"anonymous tourist", "", ""},
		{"student, third-party app", "alice@cmu.edu", "random-app"},
		{"student, campus-nav app", "alice@cmu.edu", "campus-nav"},
	}

	// Each principal's session runs under one cancellable context.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for _, p := range principals {
		fmt.Printf("\n=== %s ===\n", p.label)
		c := fed.NewClient()
		c.User, c.App = p.user, p.app

		anns := c.DiscoverV2(ctx, entrance)
		if len(anns) == 0 {
			log.Fatal("campus not discovered")
		}
		url := anns[0].URL
		fmt.Printf("  discovered %q (discovery itself is public DNS — §5.1)\n", anns[0].Name)

		// Tiles — public.
		if _, err := c.TilePNGV2(ctx, url, 18, 0, 0); err != nil {
			fmt.Println("  tiles:    DENIED  —", err)
		} else {
			fmt.Println("  tiles:    allowed (public map view)")
		}

		// Search — user-level. ("Wean" matches the entrance node.)
		if rs := c.SearchV2(ctx, "Wean", entrance, 3); len(rs) > 0 {
			fmt.Printf("  search:   allowed (%d hits)\n", len(rs))
		} else {
			fmt.Println("  search:   DENIED  (requires a cmu.edu account)")
		}

		// Localize — user + application level.
		cue := loc.Cue{Technology: loc.TechFiducial, TagID: campus.Fiducials[0].ID}
		if fix, ok := c.LocalizeV2(ctx, entrance, []loc.Cue{cue}, entrance, 0); ok {
			fmt.Printf("  localize: allowed (fix at local %v)\n", fix.Local)
		} else {
			fmt.Println("  localize: DENIED  (requires cmu.edu account AND the campus-nav app)")
		}

		// Route — default-deny.
		if _, err := c.RouteV2(ctx, entrance, geo.Offset(entrance, 20, 0)); err != nil {
			fmt.Println("  route:    DENIED  (service not offered to anyone)")
		} else {
			fmt.Println("  route:    allowed?! (policy bug)")
		}
	}

	fmt.Printf("\nThe same physical region, three different views — the federated\n" +
		"model lets the map owner, not a central platform, set these terms.\n")
	_ = discovery.DefaultSuffix
}
