package openflame

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"testing"
	"time"

	"openflame/internal/core"
	"openflame/internal/geo"
	"openflame/internal/netsim"
	"openflame/internal/resilience"
	"openflame/internal/s2cell"
	"openflame/internal/search"
	"openflame/internal/wire"
)

// ================= E14: resilient fan-out under faults ====================
// §1 claims federation isolates failures: a slow or failed member is
// skipped, not waited on. E13 showed the happy-path half (fan-out latency
// is O(slowest server)); E14 measures the unhappy path: a 16-member
// federation where 2 members flap (one alternates short blackholes, one
// alternates 503 bursts — netsim fault schedules advancing per request).
// The unhedged client (PR 1 behavior + a per-server timeout) pays the full
// timeout on every blackholed call and permanently loses the 503'd
// member's results; the resilient client (retries + hedging + breakers)
// recovers both. Expected shape: resilient p99 collapses from ≈ the
// per-server timeout to ≈ the hedge delay, and full-coverage rate rises
// toward 1.

const (
	e14Servers = 16
	e14Faulty  = 2
	e14Delay   = 5 * time.Millisecond
	e14Timeout = 150 * time.Millisecond
)

// e14Federation registers n delayed search doubles; the first `faulty` get
// flapping fault schedules (even index: blackhole flap, odd: 503 flap).
func e14Federation(b *testing.B) (*core.Federation, geo.LatLng) {
	b.Helper()
	fed, err := core.NewFederation()
	if err != nil {
		b.Fatal(err)
	}
	pos := geo.LatLng{Lat: 40.4433, Lng: -79.9436}
	token := s2cell.FromLatLng(pos).Parent(16).Token()
	for i := 0; i < e14Servers; i++ {
		name := fmt.Sprintf("e14-srv-%02d", i)
		var handler http.Handler = e14SearchDouble(name, pos)
		if i < e14Faulty {
			var sched *netsim.FaultSchedule
			if i%2 == 0 {
				// One request in five vanishes into a blackhole: the
				// tail-latency fault hedging exists for.
				sched = netsim.NewFaultSchedule(
					netsim.FaultPhase{Mode: netsim.FaultNone, Requests: 4},
					netsim.FaultPhase{Mode: netsim.FaultBlackhole, Requests: 1},
				).Loop()
			} else {
				// Bursts of two 503s: the transient fault retries recover.
				sched = netsim.NewFaultSchedule(
					netsim.FaultPhase{Mode: netsim.FaultNone, Requests: 3},
					netsim.FaultPhase{Mode: netsim.FaultError, Requests: 2},
				).Loop()
			}
			handler = sched.Wrap(handler)
		}
		ts := httptest.NewServer(handler)
		b.Cleanup(ts.Close)
		if err := fed.Registry.Register(wire.Info{
			Name: name, Coverage: []string{token}, Services: []wire.Service{wire.SvcSearch},
		}, ts.URL); err != nil {
			b.Fatal(err)
		}
	}
	return fed, pos
}

func e14SearchDouble(name string, pos geo.LatLng) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = io.Copy(io.Discard, r.Body)
		t := time.NewTimer(e14Delay)
		defer t.Stop()
		select {
		case <-t.C:
		case <-r.Context().Done():
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(wire.SearchResponse{Results: []search.Result{
			{Name: "hit from " + name, Position: pos, TextScore: 1, Score: 1, Source: name},
		}})
	})
}

func BenchmarkE14_ResilientFanout(b *testing.B) {
	for _, mode := range []struct {
		name      string
		resilient bool
	}{
		{"unhedged", false}, // PR 1 behavior: per-server timeout only
		{"resilient", true}, // retries + hedging + breakers
	} {
		b.Run(mode.name, func(b *testing.B) {
			fed, pos := e14Federation(b)
			c := fed.NewClient()
			c.SearchRadiusMeters = 100
			c.PerServerTimeout = e14Timeout
			if mode.resilient {
				c.RetryPolicy = resilience.RetryPolicy{
					MaxAttempts: 3, BaseBackoff: 2 * time.Millisecond, Budget: 8,
				}
				c.HedgeAfter = 3 * e14Delay
				c.BreakerThreshold = 4
				c.BreakerCooldown = 500 * time.Millisecond
			}
			// Prime discovery and connections once.
			_ = c.Search("hit", pos, 2*e14Servers)

			lats := make([]time.Duration, 0, b.N)
			full := 0
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				start := time.Now()
				results := c.Search("hit", pos, 2*e14Servers)
				lats = append(lats, time.Since(start))
				srcs := map[string]bool{}
				for _, r := range results {
					srcs[r.Source] = true
				}
				if len(srcs) == e14Servers {
					full++
				}
			}
			b.StopTimer()
			sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
			pct := func(p float64) time.Duration {
				idx := int(p * float64(len(lats)))
				if idx >= len(lats) {
					idx = len(lats) - 1
				}
				return lats[idx]
			}
			b.ReportMetric(float64(pct(0.50))/1e6, "p50_ms")
			b.ReportMetric(float64(pct(0.99))/1e6, "p99_ms")
			b.ReportMetric(float64(full)/float64(len(lats)), "full_coverage")
		})
	}
}
