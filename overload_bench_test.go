// E19: overload discipline — goodput and accepted-request tail latency
// under open-loop load past capacity, with admission control (bounded
// in-flight + bounded queue + 429 shedding) ON vs OFF on otherwise
// identical servers.
//
// The driver is deliberately open-loop (internal/loadgen): arrivals follow
// a fixed schedule at ~2.5× the server's measured closed-loop capacity,
// exactly the traffic a federation member faces from millions of
// independent clients (§1) — none of whom slow down because this server
// did. Without shedding, every excess request is admitted, queues on the
// scheduler, and blows through the client's patience: the server burns its
// capacity computing answers nobody is waiting for. With shedding, excess
// traffic is refused in microseconds and the work the server does perform
// still has a listener.
//
// TestE19BenchArtifact (env-gated, `make bench-overload`) writes the
// machine-readable BENCH_overload.json and enforces the floors the design
// claims: shedding-on goodput ≥ shedding-off, and p99 of ACCEPTED requests
// within the client timeout (no timeout collapse).
package openflame

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"openflame/internal/geo"
	"openflame/internal/loadgen"
	"openflame/internal/mapserver"
	"openflame/internal/osm"
	"openflame/internal/wire"
	"openflame/internal/worldgen"
)

const (
	// e19MatrixK: each request prices a K×K route matrix with CH off, so
	// one request costs K² bidirectional Dijkstra runs — service time in
	// the milliseconds, keeping the overload arrival rates in the hundreds
	// per second so the single-process generator is never the bottleneck.
	e19MatrixK = 12
	// e19OverloadFactor: offered open-loop load relative to measured
	// closed-loop capacity.
	e19OverloadFactor = 2.5
	// e19Timeout is the synthetic client's patience; a response past it is
	// wasted server work.
	e19Timeout = 250 * time.Millisecond
	// e19WriteRatio mixes in-process inventory writes into the arrivals.
	e19WriteRatio = 0.05
)

// e19World is the shared serving fixture: a city big enough that an
// uncached, CH-less route matrix costs real CPU.
var e19World struct {
	once      sync.Once
	city      *osm.Map
	positions []geo.LatLng
	nodeIDs   []osm.NodeID
}

func e19Fixtures() {
	e19World.once.Do(func() {
		p := worldgen.DefaultCityParams()
		p.BlocksX, p.BlocksY = 20, 20
		e19World.city = worldgen.GenCity(p)
		e19World.city.Nodes(func(n *osm.Node) bool {
			e19World.positions = append(e19World.positions, e19World.city.NodePosition(n))
			e19World.nodeIDs = append(e19World.nodeIDs, n.ID)
			return true
		})
	})
}

// e19Server builds one serving stack: CH off and query cache off so every
// request performs its full compute (an overload experiment on memoized
// answers would measure the cache, not the discipline), admission on or
// off per maxInFlight.
func e19Server(t testing.TB, maxInFlight int) (*mapserver.Server, *httptest.Server) {
	t.Helper()
	e19Fixtures()
	srv, err := mapserver.New(mapserver.Config{
		Name:        "overload",
		Map:         e19World.city,
		UseCH:       false,
		MaxInFlight: maxInFlight,
		MaxQueue:    2 * maxInFlight,
		QueueWait:   20 * time.Millisecond,
		RetryAfter:  time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

// e19HTTPClient returns a client whose connection pool is not the
// bottleneck (the default transport caps idle conns per host at 2, which
// would serialize the open-loop fan-in).
func e19HTTPClient() *http.Client {
	return &http.Client{Transport: &http.Transport{
		MaxIdleConns:        4096,
		MaxIdleConnsPerHost: 4096,
	}}
}

// e19MatrixBody builds one route-matrix request body over K random points
// drawn from the Zipf-hot region.
func e19MatrixBody(rng *rand.Rand, regionDraw func() uint64, regions int) []byte {
	nPos := len(e19World.positions)
	chunk := nPos / regions
	region := int(regionDraw())
	pick := func() geo.LatLng {
		return e19World.positions[region*chunk+rng.Intn(chunk)]
	}
	req := wire.RouteMatrixRequest{
		FromNodes: make([]int64, e19MatrixK),
		ToNodes:   make([]int64, e19MatrixK),
	}
	for i := 0; i < e19MatrixK; i++ {
		req.FromPositions = append(req.FromPositions, pick())
		req.ToPositions = append(req.ToPositions, pick())
	}
	body, err := json.Marshal(req)
	if err != nil {
		panic(err)
	}
	return body
}

// e19Capacity measures closed-loop capacity: GOMAXPROCS workers, each
// issuing its next request only after the last answered — the self-
// throttling driver that cannot overload anything. Completions per second
// under it are the server's sustainable rate.
func e19Capacity(t testing.TB, url string, client *http.Client) float64 {
	t.Helper()
	const probe = 600 * time.Millisecond
	var completed atomic.Int64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	workers := runtime.GOMAXPROCS(0)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			regionDraw := loadgen.Zipf(rng, 1.2, 16)
			for {
				select {
				case <-stop:
					return
				default:
				}
				body := e19MatrixBody(rng, regionDraw, 16)
				res, err := client.Post(url+"/routematrix", "application/json", bytes.NewReader(body))
				if err != nil {
					t.Errorf("capacity probe: %v", err)
					return
				}
				_, _ = io.Copy(io.Discard, res.Body)
				res.Body.Close()
				if res.StatusCode == http.StatusOK {
					completed.Add(1)
				}
			}
		}(w)
	}
	start := time.Now()
	time.Sleep(probe)
	close(stop)
	wg.Wait()
	return float64(completed.Load()) / time.Since(start).Seconds()
}

// e19Run offers rate req/s open-loop for duration against the target,
// mixing e19WriteRatio in-process inventory writes.
func e19Run(srv *mapserver.Server, url string, client *http.Client, rate float64, duration time.Duration) *loadgen.Result {
	var seq atomic.Int64
	return loadgen.Run(context.Background(), loadgen.Config{
		Rate:       rate,
		Duration:   duration,
		Timeout:    e19Timeout,
		WriteRatio: e19WriteRatio,
		Seed:       19,
		Op: func(rng *rand.Rand, _ int, write bool) loadgen.Op {
			if write {
				// Writes are in-process by design: the serving API has no
				// write endpoint (mutations arrive via operator tooling and
				// replica anti-entropy), but write traffic still bumps the
				// generation and contends on the store exactly as under a
				// mixed workload.
				id := e19World.nodeIDs[rng.Intn(len(e19World.nodeIDs))]
				n := seq.Add(1)
				return func(ctx context.Context) loadgen.Outcome {
					srv.ApplyInventoryUpdate(id, osm.Tags{"stock": fmt.Sprintf("%d", n)})
					return loadgen.OK
				}
			}
			regionDraw := loadgen.Zipf(rng, 1.2, 16)
			body := e19MatrixBody(rng, regionDraw, 16)
			return func(ctx context.Context) loadgen.Outcome {
				hr, err := http.NewRequestWithContext(ctx, http.MethodPost, url+"/routematrix", bytes.NewReader(body))
				if err != nil {
					return loadgen.Error
				}
				hr.Header.Set("Content-Type", "application/json")
				res, err := client.Do(hr)
				if err != nil {
					if ctx.Err() != nil {
						return loadgen.Timeout
					}
					return loadgen.Error
				}
				defer res.Body.Close()
				_, _ = io.Copy(io.Discard, res.Body)
				return loadgen.ForStatus(res.StatusCode)
			}
		},
	})
}

type e19Side struct {
	GoodputPS float64 `json:"goodputPerSec"`
	Arrivals  int64   `json:"arrivals"`
	OK        int64   `json:"ok"`
	Shed      int64   `json:"shed"`
	Timeouts  int64   `json:"timeouts"`
	Errors    int64   `json:"errors"`
	Dropped   int64   `json:"dropped"`
	// Writes counts the in-process inventory updates mixed into the
	// arrivals; they complete in microseconds and are included in OK, so
	// subtract them when reading goodput as "HTTP answers per second".
	Writes int64   `json:"writes"`
	P50MS  float64 `json:"p50AcceptedMs"`
	P95MS  float64 `json:"p95AcceptedMs"`
	P99MS  float64 `json:"p99AcceptedMs"`
}

func e19Summarize(r *loadgen.Result) e19Side {
	return e19Side{
		GoodputPS: r.Goodput(),
		Arrivals:  r.Arrivals,
		OK:        r.OK,
		Shed:      r.Shed,
		Timeouts:  r.Timeouts,
		Errors:    r.Errors,
		Dropped:   r.Dropped,
		Writes:    r.Writes,
		P50MS:     float64(r.PercentileOK(50)) / float64(time.Millisecond),
		P95MS:     float64(r.PercentileOK(95)) / float64(time.Millisecond),
		P99MS:     float64(r.PercentileOK(99)) / float64(time.Millisecond),
	}
}

// TestE19BenchArtifact runs the overload comparison and writes
// BENCH_overload.json (when BENCH_OVERLOAD_JSON names the output path;
// `make bench-overload` sets it). Skipped in the ordinary test run — it
// deliberately saturates the machine for several seconds.
func TestE19BenchArtifact(t *testing.T) {
	out := os.Getenv("BENCH_OVERLOAD_JSON")
	if out == "" {
		t.Skip("set BENCH_OVERLOAD_JSON=<path> (or run `make bench-overload`) to produce the artifact")
	}
	client := e19HTTPClient()
	defer client.CloseIdleConnections()

	// Capacity is measured against the shedding-off server: closed-loop
	// drivers never trip admission control, so either server would do,
	// but "off" keeps the baseline pure.
	srvOff, tsOff := e19Server(t, 0)
	capacity := e19Capacity(t, tsOff.URL, client)
	if capacity <= 0 {
		t.Fatal("capacity probe measured nothing")
	}
	offered := capacity * e19OverloadFactor
	const duration = 2500 * time.Millisecond
	t.Logf("E19: closed-loop capacity %.0f req/s; offering %.0f req/s open-loop for %v", capacity, offered, duration)

	off := e19Run(srvOff, tsOff.URL, client, offered, duration)
	tsOff.Close()

	srvOn, tsOn := e19Server(t, runtime.GOMAXPROCS(0))
	on := e19Run(srvOn, tsOn.URL, client, offered, duration)
	adm := srvOn.AdmissionStats()

	artifact := struct {
		Experiment     string  `json:"experiment"`
		CapacityPS     float64 `json:"closedLoopCapacityPerSec"`
		OfferedPS      float64 `json:"offeredPerSec"`
		OverloadFactor float64 `json:"overloadFactor"`
		TimeoutMS      float64 `json:"clientTimeoutMs"`
		WriteRatio     float64 `json:"writeRatio"`
		SheddingOn     e19Side `json:"sheddingOn"`
		SheddingOff    e19Side `json:"sheddingOff"`
		ServerShed     int64   `json:"serverShedTotal"`
		ServerAdmitted int64   `json:"serverAdmitted"`
	}{
		Experiment:     "E19",
		CapacityPS:     capacity,
		OfferedPS:      offered,
		OverloadFactor: e19OverloadFactor,
		TimeoutMS:      float64(e19Timeout) / float64(time.Millisecond),
		WriteRatio:     e19WriteRatio,
		SheddingOn:     e19Summarize(on),
		SheddingOff:    e19Summarize(off),
		ServerShed:     adm.Shed(),
		ServerAdmitted: adm.Admitted,
	}
	data, err := json.MarshalIndent(artifact, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("E19: goodput on=%.0f/s off=%.0f/s | shed on=%d | timeouts on=%d off=%d | accepted p99 on=%.1fms off=%.1fms",
		artifact.SheddingOn.GoodputPS, artifact.SheddingOff.GoodputPS,
		artifact.SheddingOn.Shed, artifact.SheddingOn.Timeouts, artifact.SheddingOff.Timeouts,
		artifact.SheddingOn.P99MS, artifact.SheddingOff.P99MS)

	// The floors under test. Goodput: shedding must not cost throughput at
	// overload — the shed requests were doomed anyway; the discipline
	// spends the reclaimed capacity on requests that still have a waiting
	// client. Tail: what the admission-controlled server ACCEPTS it must
	// answer inside the client's patience — accepted-then-timed-out is the
	// collapse mode shedding exists to prevent.
	if artifact.SheddingOn.GoodputPS < artifact.SheddingOff.GoodputPS {
		t.Errorf("shedding-on goodput %.0f/s < shedding-off %.0f/s at %.1fx capacity",
			artifact.SheddingOn.GoodputPS, artifact.SheddingOff.GoodputPS, e19OverloadFactor)
	}
	if p99 := artifact.SheddingOn.P99MS; p99 > float64(e19Timeout)/float64(time.Millisecond) {
		t.Errorf("accepted-request p99 %.1fms exceeds the %v client timeout with shedding on", p99, e19Timeout)
	}
	if artifact.SheddingOn.Shed == 0 {
		t.Errorf("no sheds at %.1fx capacity — the experiment never exercised admission control", e19OverloadFactor)
	}
}
