GO ?= go

.PHONY: verify fmt vet staticcheck build test race cover bench-fanout bench-resilience bench-replication bench-smoke

## verify: the full CI gate — formatting, vet, build, tests under -race
## (twice, so flaky tests surface). CI additionally runs staticcheck.
verify: fmt vet build race

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

## staticcheck: runs if the binary is installed (CI installs it; locally
## `go install honnef.co/go/tools/cmd/staticcheck@2024.1.1`).
staticcheck:
	@if command -v staticcheck >/dev/null; then staticcheck ./...; \
		else echo "staticcheck not installed; skipping"; fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -count=2 ./...

## cover: coverage profile + total, as CI reports it.
cover:
	$(GO) test -coverprofile=coverage.out -covermode=atomic ./...
	$(GO) tool cover -func=coverage.out | tail -n 1

## bench-fanout: the E13 sequential-vs-concurrent fan-out comparison.
bench-fanout:
	$(GO) test -run xxx -bench E13 -benchtime 10x .

## bench-resilience: the E14 faulty-federation comparison (hedged vs not).
bench-resilience:
	$(GO) test -run xxx -bench E14 -benchtime 200x .

## bench-replication: the E16 replica-aware fan-out comparison (one
## request per replica set vs query-everyone).
bench-replication:
	$(GO) test -run xxx -bench E16 -benchtime 200x .

## bench-smoke: compile and run EVERY benchmark for one iteration, so the
## growing suite (E1–E15 plus per-package micro-benchmarks) can never rot
## uncompiled. Numbers are meaningless at 1x; only pass/fail matters.
bench-smoke:
	$(GO) test -run xxx -bench . -benchtime 1x ./...
