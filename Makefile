GO ?= go

.PHONY: verify fmt vet build test race bench-fanout

## verify: the full CI gate — formatting, vet, build, tests under -race.
verify: fmt vet build race

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## bench-fanout: the E13 sequential-vs-concurrent fan-out comparison.
bench-fanout:
	$(GO) test -run xxx -bench E13 -benchtime 10x .
