GO ?= go

.PHONY: verify fmt vet build test race cover bench-fanout bench-resilience bench-smoke

## verify: the full CI gate — formatting, vet, build, tests under -race
## (twice, so flaky tests surface).
verify: fmt vet build race

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -count=2 ./...

## cover: coverage profile + total, as CI reports it.
cover:
	$(GO) test -coverprofile=coverage.out -covermode=atomic ./...
	$(GO) tool cover -func=coverage.out | tail -n 1

## bench-fanout: the E13 sequential-vs-concurrent fan-out comparison.
bench-fanout:
	$(GO) test -run xxx -bench E13 -benchtime 10x .

## bench-resilience: the E14 faulty-federation comparison (hedged vs not).
bench-resilience:
	$(GO) test -run xxx -bench E14 -benchtime 200x .

## bench-smoke: compile and run EVERY benchmark for one iteration, so the
## growing suite (E1–E15 plus per-package micro-benchmarks) can never rot
## uncompiled. Numbers are meaningless at 1x; only pass/fail matters.
bench-smoke:
	$(GO) test -run xxx -bench . -benchtime 1x ./...
