GO ?= go

.PHONY: verify fmt vet staticcheck deprecation-guard build test race cover bench-fanout bench-resilience bench-replication bench-session bench-route bench-overload bench-world bench-boot bench-watch bench-smoke

## verify: the full CI gate — formatting, vet, the v2-API deprecation
## guard, build, tests under -race (twice, so flaky tests surface). CI
## additionally runs staticcheck.
verify: fmt vet deprecation-guard build race

## deprecation-guard: the v2 client API (SearchV2/GeocodeV2/... with
## CallOptions) is the only surface this repository may use. The v1
## wrappers exist solely for external source compatibility: they are
## defined in internal/client/legacy.go and pinned byte-identical to v2 by
## tests (which therefore keep calling them — tests are exempt). Any other
## call site in internal/, cmd/, or examples/ fails the build here.
## Three passes, because some v1 names are ambiguous with other types:
##  1. names unique to the client wrappers, greppable repo-wide;
##  2. DiscoverCtx, excluding discovery.Client's own method (used via the
##     `disc` field);
##  3. the bare v1 names (Search/Geocode/Route/Localize/Discover/Info) on
##     a `c.` receiver in the packages where `c` is conventionally the
##     client — a heuristic: a bare-name call on an unconventionally-named
##     receiver can slip past this pass (staticcheck's SA1019 would catch
##     it but is disabled, see staticcheck.conf).
LEGACY_CLIENT_METHODS := SearchCtx|SearchFanout|SearchFanoutCtx|GeocodeCtx|ReverseGeocode|ReverseGeocodeCtx|LocalizeCtx|RouteCtx|GetTilePNG|GetTilePNGCtx|InfoCtx
deprecation-guard:
	@out=$$(grep -rnE '\.($(LEGACY_CLIENT_METHODS))\(' internal cmd examples \
		--include='*.go' --exclude='*_test.go' --exclude=legacy.go || true); \
	out2=$$(grep -rnE '\.DiscoverCtx\(' cmd examples internal/core internal/client \
		--include='*.go' --exclude='*_test.go' --exclude=legacy.go | grep -v 'disc\.DiscoverCtx' || true); \
	out3=$$(grep -rnE '\bc\.(Search|Geocode|Route|Localize|Discover|Info)\(' \
		cmd examples internal/core internal/client \
		--include='*.go' --exclude='*_test.go' --exclude=legacy.go || true); \
	if [ -n "$$out$$out2$$out3" ]; then \
		echo "deprecated v1 client API called outside internal/client/legacy.go:"; \
		echo "$$out"; echo "$$out2"; echo "$$out3"; exit 1; fi

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

## staticcheck: runs if the binary is installed (CI installs it; locally
## `go install honnef.co/go/tools/cmd/staticcheck@2024.1.1`).
staticcheck:
	@if command -v staticcheck >/dev/null; then staticcheck ./...; \
		else echo "staticcheck not installed; skipping"; fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -count=2 ./...

## cover: coverage profile + total, as CI reports it.
cover:
	$(GO) test -coverprofile=coverage.out -covermode=atomic ./...
	$(GO) tool cover -func=coverage.out | tail -n 1

## bench-fanout: the E13 sequential-vs-concurrent fan-out comparison.
bench-fanout:
	$(GO) test -run xxx -bench E13 -benchtime 10x .

## bench-resilience: the E14 faulty-federation comparison (hedged vs not).
bench-resilience:
	$(GO) test -run xxx -bench E14 -benchtime 200x .

## bench-replication: the E16 replica-aware fan-out comparison (one
## request per replica set vs query-everyone).
bench-replication:
	$(GO) test -run xxx -bench E16 -benchtime 200x .

## bench-session: the E17 staleness comparison — reads under injected
## replica lag with forced failover, with session-consistency marks vs
## without (stalereads/op must be 0 with sessions, 1 without).
bench-session:
	$(GO) test -run xxx -bench E17 -benchtime 20x .

## bench-route: the E18 routing raw-speed comparison — CH vs bidirectional
## Dijkstra point-to-point, bucket-based many-to-many vs the per-pair
## loop. Writes the machine-readable BENCH_route.json artifact and fails
## if the speedup floors (p2p ≥5×, matrix ≥10×) are not met.
bench-route:
	BENCH_ROUTE_JSON=BENCH_route.json $(GO) test -run TestE18BenchArtifact -count=1 -v .

## bench-overload: the E19 overload-discipline experiment — open-loop load
## at 2.5x measured capacity against identical servers with admission
## control on vs off. Writes BENCH_overload.json and fails if shedding-on
## goodput drops below the shedding-off baseline or the accepted-request
## p99 exceeds the client timeout.
bench-overload:
	BENCH_OVERLOAD_JSON=BENCH_overload.json $(GO) test -run TestE19BenchArtifact -count=1 -v .

## bench-world: the E20 memory-lean world experiment — columnar node
## storage vs the pointer-per-node layout, snapshot v2 load (streamed and
## mmapped) vs the v1 gob decode, and serving latencies, all on a
## city-scale world (~1.05M nodes; override with BENCH_WORLD_BLOCKS for a
## quicker run). Writes BENCH_world.json and fails if the floors slip:
## bytes/node ≥4× leaner, v2 load ≥5× faster, serving parity byte-exact.
bench-world:
	BENCH_WORLD_JSON=BENCH_world.json $(GO) test -run TestE20BenchArtifact -count=1 -timeout 30m -v .

## bench-boot: the E21 boot-to-serving experiment — attaching the
## persisted snapshot index (mmap + store.NewWithIndex) vs rebuilding
## every serving index from the node columns, plus time-to-first-200
## through a real HTTP listener, on the E20 city-scale world (override
## with BENCH_BOOT_BLOCKS for a quicker run). Writes BENCH_boot.json and
## fails if the floors slip: index attach ≥20× faster than the rebuild,
## attach boot strictly faster to the first 200, serving results
## byte-identical between the attached and rebuilt stores.
bench-boot:
	BENCH_BOOT_JSON=BENCH_boot.json $(GO) test -run TestE21BenchArtifact -count=1 -timeout 30m -v .

## bench-watch: the E22 streaming-read-path experiment — N polling clients
## vs N push watchers on a churning region. Writes BENCH_watch.json and
## fails if the floors slip: watch side ≥10× fewer HTTP requests than the
## poll side, pushed-delta freshness p95 under the poll interval, every
## watcher converged on the final write, and hub evaluations scaling with
## churn rather than with the watcher population (coalescing).
bench-watch:
	BENCH_WATCH_JSON=BENCH_watch.json $(GO) test -run TestE22BenchArtifact -count=1 -v .

## bench-smoke: compile and run EVERY benchmark for one iteration, so the
## growing suite (E1–E22 plus per-package micro-benchmarks) can never rot
## uncompiled. Numbers are meaningless at 1x; only pass/fail matters.
bench-smoke:
	$(GO) test -run xxx -bench . -benchtime 1x ./...
