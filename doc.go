// Package openflame is a from-scratch reproduction of "Uniting the World by
// Dividing it: Federated Maps to Enable Spatial Applications" (HotOS 2025):
// a federated spatial naming system in which independent map servers own
// maps of physical regions, a DNS-based discovery layer maps locations to
// servers, and a client stitches location-based services — geocoding,
// search, routing, localization, and tiles — across the federation.
//
// The implementation lives under internal/ (see DESIGN.md for the system
// inventory); runnable entry points are under cmd/ and examples/; the
// experiment harness reproducing the paper's architecture comparison is in
// bench_test.go, indexed by experiment ID in EXPERIMENTS.md.
//
// # API v2 migration
//
// The client surface is v2: ONE ctx-first method per service with
// variadic per-call options, replacing the Foo/FooCtx/FooFanout/
// FooFanoutCtx wrapper triplets of v1. Migrate call sites mechanically:
//
//	c.Search(q, near, n)              →  c.SearchV2(ctx, q, near, n)
//	c.SearchCtx(ctx, q, near, n)      →  c.SearchV2(ctx, q, near, n)
//	c.SearchFanout(q, near, n, k)     →  c.SearchV2(ctx, q, near, n, client.WithMaxServers(k))
//	c.GeocodeCtx(ctx, addr)           →  c.GeocodeV2(ctx, addr)
//	c.ReverseGeocode(ll, m)           →  c.ReverseGeocodeV2(ctx, ll, m)
//	c.LocalizeCtx(ctx, at, cues, ...) →  c.LocalizeV2(ctx, at, cues, ...)
//	c.RouteCtx(ctx, from, to)         →  c.RouteV2(ctx, from, to)
//	c.Discover / c.DiscoverCtx        →  c.DiscoverV2(ctx, ll)
//	c.Info / c.InfoCtx                →  c.InfoV2(ctx, url)
//	c.GetTilePNG / c.GetTilePNGCtx    →  c.TilePNGV2(ctx, url, z, x, y)
//	(poll loop over SearchV2)         →  c.WatchV2(ctx, q, near, n)
//
// WatchV2 is new in v2 with no v1 counterpart: it subscribes to the query
// instead of answering it once, delivering an initial result set and then
// pushed deltas across replica failover and origin restarts (DESIGN.md
// §11, experiment E22).
//
// Options: WithMaxServers bounds how many replica groups answer,
// WithTimeout overrides the per-server timeout for one call (0 lifts it),
// WithNoBatch disables /v1/batch coalescing for one call, and
// WithConsistency(ConsistencySession) / WithSession(s) run the call under
// session consistency — reads carry per-replica-set high-water marks, a
// lagging replica refuses (HTTP 412 stale-replica) instead of serving
// state older than the session has observed, and the query plan fails
// over to a caught-up sibling (monotonic reads + read-your-writes across
// replica failover; see DESIGN.md §6 and experiment E17).
//
// The v1 wrappers still compile (internal/client/legacy.go) and are
// pinned byte-identical to v2-with-default-options, but they are
// deprecated: new code must use v2, and `make deprecation-guard` (part of
// `make verify` and CI) rejects any non-test v1 call inside this
// repository.
package openflame
