// Package openflame is a from-scratch reproduction of "Uniting the World by
// Dividing it: Federated Maps to Enable Spatial Applications" (HotOS 2025):
// a federated spatial naming system in which independent map servers own
// maps of physical regions, a DNS-based discovery layer maps locations to
// servers, and a client stitches location-based services — geocoding,
// search, routing, localization, and tiles — across the federation.
//
// The implementation lives under internal/ (see DESIGN.md for the system
// inventory); runnable entry points are under cmd/ and examples/; the
// experiment harness reproducing the paper's architecture comparison is in
// bench_test.go, indexed by experiment ID in EXPERIMENTS.md.
package openflame
