// Importing a real-format OSM extract must yield a world that actually
// serves: search answers from the store index and contraction-hierarchy
// routing runs over the imported road graph. The extract is generated in
// OSM XML (the same shape Geofabrik city extracts take) and streamed
// through osm.ImportExtract.
package openflame

import (
	"fmt"
	"io"
	"strings"
	"testing"

	"openflame/internal/graph"
	"openflame/internal/osm"
	"openflame/internal/search"
	"openflame/internal/store"
)

// importTestExtract emits a 12×12 street grid with named POI nodes —
// nodes first, then chain ways, as extract tools order them.
func importTestExtract(w io.Writer) error {
	const n = 12
	if _, err := io.WriteString(w, `<?xml version="1.0"?><osm version="0.6">`); err != nil {
		return err
	}
	id := func(r, c int) int { return r*n + c + 1 }
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			tags := ""
			if (r+c)%7 == 0 {
				tags = fmt.Sprintf(`<tag k="name" v="Imported Cafe %d"/><tag k="amenity" v="cafe"/>`, id(r, c))
			}
			if _, err := fmt.Fprintf(w, `<node id="%d" lat="%.6f" lon="%.6f">%s</node>`,
				id(r, c), 40.0+float64(r)*0.001, -80.0+float64(c)*0.001, tags); err != nil {
				return err
			}
		}
	}
	wid := 1
	emitWay := func(ids []int) error {
		if _, err := fmt.Fprintf(w, `<way id="%d"><tag k="highway" v="residential"/>`, wid); err != nil {
			return err
		}
		wid++
		for _, i := range ids {
			if _, err := fmt.Fprintf(w, `<nd ref="%d"/>`, i); err != nil {
				return err
			}
		}
		_, err := io.WriteString(w, `</way>`)
		return err
	}
	for r := 0; r < n; r++ {
		row := make([]int, n)
		for c := 0; c < n; c++ {
			row[c] = id(r, c)
		}
		if err := emitWay(row); err != nil {
			return err
		}
	}
	for c := 0; c < n; c++ {
		col := make([]int, n)
		for r := 0; r < n; r++ {
			col[r] = id(r, c)
		}
		if err := emitWay(col); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, `</osm>`)
	return err
}

func TestImportedWorldServesSearchAndCHRoutes(t *testing.T) {
	var doc strings.Builder
	if err := importTestExtract(&doc); err != nil {
		t.Fatal(err)
	}
	m, stats, err := osm.ImportExtract(strings.NewReader(doc.String()), osm.ImportOptions{Name: "imported-city"})
	if err != nil {
		t.Fatal(err)
	}
	if stats.NodesKept != 144 || stats.WaysKept != 24 {
		t.Fatalf("import: %+v", stats)
	}

	st := store.New(m)
	results := search.New(st).Search("imported cafe", search.Options{Limit: 5})
	if len(results) == 0 {
		t.Fatal("imported world returned no search results")
	}
	if !strings.Contains(results[0].Name, "Imported Cafe") {
		t.Fatalf("unexpected top hit %q", results[0].Name)
	}

	g := graph.FromOSM(m, graph.FootProfile)
	ch := graph.BuildCH(g)
	p, err := ch.Query(1, 144) // opposite grid corners
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Nodes) < 12 || p.Cost <= 0 {
		t.Fatalf("CH route degenerate: %d nodes cost %.1f", len(p.Nodes), p.Cost)
	}
}
